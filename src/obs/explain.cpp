#include "obs/explain.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "ir/printer.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

// Canonical JSON string writer (same escaping discipline as
// obs/provenance.cpp: labels and rules never need more than \" \\).
void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
writeIntArray(std::ostream &os, const std::vector<int> &v)
{
    os << "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ",";
        os << v[i];
    }
    os << "]";
}

/** "t0->t1" rendering of a directed thread pair. */
std::string
pairStr(int src, int dst)
{
    return "t" + std::to_string(src) + "->t" + std::to_string(dst);
}

void
renderPlacementDecision(std::ostream &os, const PlacementDecision &d,
                        const char *indent)
{
    os << indent << "placement " << d.index << ": "
       << (d.is_mem ? "mem sync" : "reg r" + std::to_string(d.reg))
       << " " << pairStr(d.src_thread, d.dst_thread) << ", rule "
       << d.rule;
    if (d.iteration > 0)
        os << ", iteration " << d.iteration;
    if (d.problem >= 0)
        os << ", problem " << d.problem;
    if (d.rule == "coco-cut")
        os << ", cut cost " << d.cut_cost << " (graph " << d.graph_nodes
           << " nodes / " << d.graph_arcs << " arcs)";
    if (d.is_mem && d.num_deps > 0)
        os << ", " << d.num_deps << " deps";
    os << "\n";
    for (const CutPointCost &pt : d.points) {
        os << indent << "  point B" << pt.block << "+" << pt.pos
           << ": cost " << pt.cost;
        if (pt.arcs > 0)
            os << " (" << pt.arcs << " cut arcs)";
        os << "\n";
    }
}

void
writePlacementDecisionJson(std::ostream &os, const PlacementDecision &d)
{
    os << "{\"index\":" << d.index << ",\"kind\":"
       << (d.is_mem ? "\"mem\"" : "\"reg\"") << ",\"reg\":" << d.reg
       << ",\"src\":" << d.src_thread << ",\"dst\":" << d.dst_thread
       << ",\"rule\":";
    writeString(os, d.rule);
    os << ",\"iteration\":" << d.iteration << ",\"problem\":" << d.problem
       << ",\"cut_cost\":" << d.cut_cost << ",\"points\":[";
    for (size_t i = 0; i < d.points.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"block\":" << d.points[i].block
           << ",\"pos\":" << d.points[i].pos
           << ",\"cost\":" << d.points[i].cost
           << ",\"arcs\":" << d.points[i].arcs << "}";
    }
    os << "]}";
}

void
writeUnitDecisionJson(std::ostream &os, const UnitDecision &u)
{
    os << "{\"unit\":" << u.unit << ",\"thread\":" << u.thread
       << ",\"order\":" << u.order << ",\"work\":" << u.work
       << ",\"members\":" << u.num_members
       << ",\"first_instr\":" << u.first_instr
       << ",\"acc_before\":" << u.acc_before
       << ",\"target\":" << u.target << ",\"candidates\":[";
    for (size_t i = 0; i < u.candidates.size(); ++i) {
        const ThreadCandidate &c = u.candidates[i];
        if (i)
            os << ",";
        os << "{\"thread\":" << c.thread << ",\"busy\":" << c.busy
           << ",\"comm\":" << c.comm << ",\"score\":" << c.score
           << ",\"chosen\":" << (c.chosen ? "true" : "false") << "}";
    }
    os << "]}";
}

/**
 * Plan placement decisions that involve instruction @p i: register
 * decisions carrying its def from its thread, in index order.
 */
std::vector<const PlacementDecision *>
placementsInvolving(const Provenance &prov, const Function &f, InstrId i)
{
    std::vector<const PlacementDecision *> out;
    const Reg def = f.defOf(i);
    if (def == kNoReg)
        return out;
    const int thread = i < (InstrId)prov.partition.thread_of.size()
                           ? prov.partition.thread_of[i]
                           : 0;
    for (const PlacementDecision &d : prov.placement.placements)
        if (!d.is_mem && d.reg == def && d.src_thread == thread)
            out.push_back(&d);
    for (const PlacementDecision &d : prov.placement.elided)
        if (!d.is_mem && d.reg == def && d.src_thread == thread)
            out.push_back(&d);
    return out;
}

void
renderUnitDecision(std::ostream &os, const Provenance &prov,
                   const UnitDecision &u)
{
    const PartitionProvenance &part = prov.partition;
    os << "  partitioner " << part.algorithm << " placed unit "
       << u.unit << " (" << u.num_members << " instrs, work " << u.work
       << ") on " << (part.algorithm == "DSWP" ? "stage " : "thread ")
       << u.thread << "\n";
    os << "  decision #" << (u.order + 1) << " of "
       << part.units.size();
    if (part.algorithm == "DSWP") {
        os << "; greedy fill: stage load " << u.acc_before
           << " of target " << u.target << " before this unit\n";
    } else {
        os << "\n";
        for (const ThreadCandidate &c : u.candidates) {
            os << "    thread " << c.thread << ": busy " << c.busy
               << " + work " << u.work << " + comm " << c.comm << " = "
               << c.score << (c.chosen ? "  <= chosen" : "") << "\n";
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Point queries.

void
renderInstrExplanation(std::ostream &os, const Provenance &prov,
                       const Function &f, InstrId instr)
{
    if (instr < 0 || instr >= f.numInstrs()) {
        os << "instr " << instr << ": out of range (function has "
           << f.numInstrs() << " instructions)\n";
        return;
    }
    const ProgramPoint pt = f.pointBefore(instr);
    os << "instr " << instr << ": " << instrToString(f, instr)
       << "   [block " << f.block(pt.block).label();
    if (instr < (InstrId)prov.partition.thread_of.size())
        os << ", thread " << prov.partition.thread_of[instr];
    os << "]\n";
    const UnitDecision *u = prov.unitDecisionFor(instr);
    if (!u) {
        os << "  no partition decision recorded\n";
        return;
    }
    renderUnitDecision(os, prov, *u);
    auto placements = placementsInvolving(prov, f, instr);
    if (placements.empty()) {
        os << "  communicates: nothing (def stays thread-local)\n";
        return;
    }
    os << "  communicates:\n";
    for (const PlacementDecision *d : placements) {
        if (d->index < 0) {
            os << "    (elided) reg r" << d->reg << " "
               << pairStr(d->src_thread, d->dst_thread) << ", rule "
               << d->rule << " — cut proved no communication needed\n";
            continue;
        }
        renderPlacementDecision(os, *d, "    ");
    }
}

void
renderQueueExplanation(std::ostream &os, const Provenance &prov,
                       int queue)
{
    const QueueDecision *qd = prov.queueDecisionFor(queue);
    if (!qd) {
        os << "queue " << queue << ": not allocated ("
           << prov.queues.num_queues << " of "
           << (prov.queues.max_queues > 0
                   ? std::to_string(prov.queues.max_queues)
                   : std::string("unlimited"))
           << " queues in use)\n";
        if (!prov.placement.elided.empty()) {
            os << "  elided decisions (cut proved no communication "
                  "needed):\n";
            for (const PlacementDecision &d : prov.placement.elided) {
                os << "    "
                   << (d.is_mem ? "mem sync"
                                : "reg r" + std::to_string(d.reg))
                   << " " << pairStr(d.src_thread, d.dst_thread)
                   << ": rule " << d.rule;
                if (d.iteration > 0)
                    os << ", iteration " << d.iteration;
                os << " — empty point set\n";
            }
        }
        return;
    }
    os << "queue " << queue << ": "
       << pairStr(qd->src_thread, qd->dst_thread) << ", rule "
       << qd->rule << "\n";
    if (qd->rule == "identity")
        os << "  one queue per placement (no architected budget)\n";
    else
        os << "  pair " << pairStr(qd->src_thread, qd->dst_thread)
           << ": " << qd->pair_placements << " placements share "
           << qd->pair_queues << " queues (budget "
           << prov.queues.max_queues << ", " << prov.queues.num_queues
           << " allocated)\n";
    os << "  multiplexes " << qd->placements.size() << " placement"
       << (qd->placements.size() == 1 ? "" : "s") << "\n";
    for (int pi : qd->placements) {
        const PlacementDecision *d = prov.placementDecisionFor(pi);
        if (!d) {
            os << "    placement " << pi
               << ": no decision recorded\n";
            continue;
        }
        renderPlacementDecision(os, *d, "    ");
    }
}

void
writeInstrExplanationJson(std::ostream &os, const Provenance &prov,
                          const Function &f, InstrId instr)
{
    os << "{\"schema\":1,\"type\":\"explain-instr\",\"cell\":";
    writeString(os, prov.cell);
    os << ",\"instr\":" << instr;
    const bool valid = instr >= 0 && instr < f.numInstrs();
    os << ",\"valid\":" << (valid ? "true" : "false");
    if (!valid) {
        os << "}";
        return;
    }
    os << ",\"text\":";
    writeString(os, instrToString(f, instr));
    const ProgramPoint pt = f.pointBefore(instr);
    os << ",\"block\":";
    writeString(os, f.block(pt.block).label());
    os << ",\"thread\":"
       << (instr < (InstrId)prov.partition.thread_of.size()
               ? prov.partition.thread_of[instr]
               : -1);
    os << ",\"algorithm\":";
    writeString(os, prov.partition.algorithm);
    const UnitDecision *u = prov.unitDecisionFor(instr);
    os << ",\"decision\":";
    if (u)
        writeUnitDecisionJson(os, *u);
    else
        os << "null";
    os << ",\"placements\":[";
    auto placements = placementsInvolving(prov, f, instr);
    for (size_t i = 0; i < placements.size(); ++i) {
        if (i)
            os << ",";
        writePlacementDecisionJson(os, *placements[i]);
    }
    os << "]}";
}

void
writeQueueExplanationJson(std::ostream &os, const Provenance &prov,
                          int queue)
{
    os << "{\"schema\":1,\"type\":\"explain-queue\",\"cell\":";
    writeString(os, prov.cell);
    os << ",\"queue\":" << queue;
    const QueueDecision *qd = prov.queueDecisionFor(queue);
    os << ",\"allocated\":" << (qd ? "true" : "false")
       << ",\"num_queues\":" << prov.queues.num_queues
       << ",\"max_queues\":" << prov.queues.max_queues;
    if (!qd) {
        os << ",\"elided\":[";
        for (size_t i = 0; i < prov.placement.elided.size(); ++i) {
            if (i)
                os << ",";
            writePlacementDecisionJson(os, prov.placement.elided[i]);
        }
        os << "]}";
        return;
    }
    os << ",\"src\":" << qd->src_thread << ",\"dst\":" << qd->dst_thread
       << ",\"rule\":";
    writeString(os, qd->rule);
    os << ",\"pair_placements\":" << qd->pair_placements
       << ",\"pair_queues\":" << qd->pair_queues << ",\"placements\":[";
    for (size_t i = 0; i < qd->placements.size(); ++i) {
        if (i)
            os << ",";
        const PlacementDecision *d =
            prov.placementDecisionFor(qd->placements[i]);
        if (d)
            writePlacementDecisionJson(os, *d);
        else
            os << "{\"index\":" << qd->placements[i] << "}";
    }
    os << "]}";
}

// ---------------------------------------------------------------------------
// Costliest decisions.

CostliestReport
buildCostliestReport(const Provenance &prov, const StallReport &report,
                     const Function &f)
{
    CostliestReport r;
    r.total_stall_cycles = report.totalStallCycles();

    // Queue-side entries: every allocated queue the simulator charged.
    for (const QueueAttribution &qa : report.queues) {
        if (qa.prof.stallCycles() == 0)
            continue;
        CostEntry e;
        e.kind = "queue";
        e.cycles = qa.prof.stallCycles();
        e.queue = qa.queue;
        const QueueDecision *qd = prov.queueDecisionFor(qa.queue);
        if (qd) {
            e.queue_rule = qd->rule;
            ++e.records;
        }
        for (const PlacementDesc &pd : qa.placements) {
            e.placements.push_back(pd.placement);
            const PlacementDecision *d =
                prov.placementDecisionFor(pd.placement);
            if (d) {
                e.rules.push_back(d->rule);
                ++e.records;
            } else {
                e.rules.push_back("?");
            }
        }
        r.queue_cycles += e.cycles;
        if (e.records == 0)
            ++r.unresolved;
        r.entries.push_back(std::move(e));
    }

    // Block-side entries: label-join each MT block charge back to the
    // source block, then to the unit decisions that put the stalled
    // thread's instructions there. Replicated control (a block a
    // thread carries only for its branch) resolves through the
    // terminator's owning unit.
    std::map<std::string, BlockId> block_of_label;
    for (BlockId b = 0; b < f.numBlocks(); ++b)
        block_of_label[f.block(b).label()] = b;
    for (const BlockAttribution &ba : report.blocks) {
        CostEntry e;
        e.kind = "block";
        e.cycles = ba.prof.total();
        e.thread = ba.thread;
        e.label = ba.label;
        auto it = block_of_label.find(ba.label);
        if (it != block_of_label.end()) {
            e.block = it->second;
            const BasicBlock &bb = f.block(e.block);
            std::set<int> units;
            for (InstrId i : bb.instrs()) {
                if (i < (InstrId)prov.partition.thread_of.size() &&
                    prov.partition.thread_of[i] == ba.thread &&
                    i < (InstrId)prov.partition.unit_of.size())
                    units.insert(prov.partition.unit_of[i]);
            }
            if (units.empty() && bb.terminator() >= 0 &&
                bb.terminator() <
                    (InstrId)prov.partition.unit_of.size()) {
                units.insert(prov.partition.unit_of[bb.terminator()]);
                e.terminator_fallback = true;
            }
            e.units.assign(units.begin(), units.end());
            for (int u : e.units)
                if ((size_t)u < prov.partition.units.size())
                    ++e.records;
        }
        r.block_cycles += e.cycles;
        if (e.records == 0)
            ++r.unresolved;
        r.entries.push_back(std::move(e));
    }

    std::stable_sort(r.entries.begin(), r.entries.end(),
                     [](const CostEntry &a, const CostEntry &b) {
                         if (a.cycles != b.cycles)
                             return a.cycles > b.cycles;
                         if (a.kind != b.kind)
                             return a.kind > b.kind; // queue first
                         if (a.queue != b.queue)
                             return a.queue < b.queue;
                         if (a.thread != b.thread)
                             return a.thread < b.thread;
                         return a.block < b.block;
                     });
    return r;
}

void
renderCostliestReport(std::ostream &os, const CostliestReport &r,
                      int top)
{
    os << "costliest decisions: total stall " << r.total_stall_cycles
       << " cycles (block view " << r.block_cycles << ", queue view "
       << r.queue_cycles << ")";
    if (r.unresolved)
        os << "; WARNING: " << r.unresolved << " unresolved entries";
    os << "\n";
    const size_t n = top > 0 ? std::min(r.entries.size(), (size_t)top)
                             : r.entries.size();
    for (size_t i = 0; i < n; ++i) {
        const CostEntry &e = r.entries[i];
        os << "  " << (i + 1) << ". ";
        if (e.kind == "queue") {
            os << "queue " << e.queue << "  " << e.cycles
               << " cycles  rule " << e.queue_rule << "; placements";
            for (size_t k = 0; k < e.placements.size(); ++k)
                os << (k ? "," : "") << " " << e.placements[k] << " ("
                   << e.rules[k] << ")";
        } else {
            os << "block t" << e.thread << "/" << e.label << "  "
               << e.cycles << " cycles  units";
            for (size_t k = 0; k < e.units.size(); ++k)
                os << (k ? "," : "") << " " << e.units[k];
            if (e.terminator_fallback)
                os << " (replicated control; terminator's unit)";
        }
        os << "\n";
    }
    if (n < r.entries.size())
        os << "  ... " << (r.entries.size() - n) << " more\n";
}

void
writeCostliestReportJson(std::ostream &os, const CostliestReport &r,
                         int top)
{
    os << "{\"schema\":1,\"type\":\"costliest\",\"total_stall_cycles\":"
       << r.total_stall_cycles << ",\"block_cycles\":" << r.block_cycles
       << ",\"queue_cycles\":" << r.queue_cycles
       << ",\"unresolved\":" << r.unresolved << ",\"entries\":[";
    const size_t n = top > 0 ? std::min(r.entries.size(), (size_t)top)
                             : r.entries.size();
    for (size_t i = 0; i < n; ++i) {
        const CostEntry &e = r.entries[i];
        if (i)
            os << ",";
        os << "{\"kind\":";
        writeString(os, e.kind);
        os << ",\"cycles\":" << e.cycles;
        if (e.kind == "queue") {
            os << ",\"queue\":" << e.queue << ",\"rule\":";
            writeString(os, e.queue_rule);
            os << ",\"placements\":";
            writeIntArray(os, e.placements);
            os << ",\"rules\":[";
            for (size_t k = 0; k < e.rules.size(); ++k) {
                if (k)
                    os << ",";
                writeString(os, e.rules[k]);
            }
            os << "]";
        } else {
            os << ",\"thread\":" << e.thread << ",\"block\":" << e.block
               << ",\"label\":";
            writeString(os, e.label);
            os << ",\"units\":";
            writeIntArray(os, e.units);
            os << ",\"terminator_fallback\":"
               << (e.terminator_fallback ? "true" : "false");
        }
        os << ",\"records\":" << e.records << "}";
    }
    os << "]}";
}

// ---------------------------------------------------------------------------
// Schedule diff.

ScheduleDiff
diffSchedules(const Provenance &pa, const StallReport &ra,
              const Provenance &pb, const StallReport &rb)
{
    ScheduleDiff d;
    d.cell_a = pa.cell;
    d.cell_b = pb.cell;
    d.cycles_a = ra.cycles;
    d.cycles_b = rb.cycles;

    const size_t n = std::min(pa.partition.thread_of.size(),
                              pb.partition.thread_of.size());
    d.instrs = (int)std::max(pa.partition.thread_of.size(),
                             pb.partition.thread_of.size());
    for (size_t i = 0; i < n; ++i)
        if (pa.partition.thread_of[i] != pb.partition.thread_of[i])
            d.moved.push_back({(InstrId)i, pa.partition.thread_of[i],
                               pb.partition.thread_of[i]});
    // Length mismatch (different workloads): surface every trailing
    // instruction as moved so the diff is visibly nonzero.
    for (size_t i = n; i < pa.partition.thread_of.size(); ++i)
        d.moved.push_back({(InstrId)i, pa.partition.thread_of[i], -1});
    for (size_t i = n; i < pb.partition.thread_of.size(); ++i)
        d.moved.push_back({(InstrId)i, -1, pb.partition.thread_of[i]});

    d.queues_a = pa.queues.num_queues;
    d.queues_b = pb.queues.num_queues;
    std::map<int, std::pair<int64_t, int64_t>> qstall;
    for (const QueueAttribution &qa : ra.queues)
        qstall[qa.queue].first += (int64_t)qa.prof.stallCycles();
    for (const QueueAttribution &qa : rb.queues)
        qstall[qa.queue].second += (int64_t)qa.prof.stallCycles();
    for (const auto &[q, st] : qstall)
        if (st.first != st.second)
            d.queue_deltas.push_back({q, st.first, st.second});

    std::map<std::pair<int, std::string>, std::pair<int64_t, int64_t>>
        bstall;
    for (const BlockAttribution &ba : ra.blocks)
        bstall[{ba.thread, ba.label}].first +=
            (int64_t)ba.prof.total();
    for (const BlockAttribution &ba : rb.blocks)
        bstall[{ba.thread, ba.label}].second +=
            (int64_t)ba.prof.total();
    for (const auto &[key, st] : bstall)
        if (st.first != st.second)
            d.block_deltas.push_back(
                {key.first, key.second, st.first, st.second});
    return d;
}

void
renderScheduleDiff(std::ostream &os, const ScheduleDiff &d)
{
    os << "diff A (" << d.cell_a << ", " << d.cycles_a
       << " cycles) vs B (" << d.cell_b << ", " << d.cycles_b
       << " cycles): "
       << ((int64_t)d.cycles_b - (int64_t)d.cycles_a)
       << " cycle delta\n";
    if (d.zero()) {
        os << "  identical schedules: 0 moved instructions, 0 cycle "
              "deltas\n";
        return;
    }
    os << "  queues: " << d.queues_a << " -> " << d.queues_b << "\n";
    os << "  moved instructions: " << d.moved.size() << " of "
       << d.instrs << "\n";
    for (const InstrMove &m : d.moved)
        os << "    instr " << m.instr << ": t" << m.thread_a << " -> t"
           << m.thread_b << "\n";
    os << "  queue stall deltas: " << d.queue_deltas.size() << "\n";
    for (const QueueCycleDelta &q : d.queue_deltas)
        os << "    queue " << q.queue << ": " << q.stall_a << " -> "
           << q.stall_b << " (" << (q.stall_b - q.stall_a) << ")\n";
    os << "  block stall deltas: " << d.block_deltas.size() << "\n";
    for (const BlockCycleDelta &b : d.block_deltas)
        os << "    t" << b.thread << "/" << b.label << ": " << b.stall_a
           << " -> " << b.stall_b << " (" << (b.stall_b - b.stall_a)
           << ")\n";
}

void
writeScheduleDiffJson(std::ostream &os, const ScheduleDiff &d)
{
    os << "{\"schema\":1,\"type\":\"schedule-diff\",\"cell_a\":";
    writeString(os, d.cell_a);
    os << ",\"cell_b\":";
    writeString(os, d.cell_b);
    os << ",\"cycles_a\":" << d.cycles_a << ",\"cycles_b\":" << d.cycles_b
       << ",\"queues_a\":" << d.queues_a << ",\"queues_b\":" << d.queues_b
       << ",\"instrs\":" << d.instrs << ",\"zero\":"
       << (d.zero() ? "true" : "false") << ",\"moved\":[";
    for (size_t i = 0; i < d.moved.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"instr\":" << d.moved[i].instr << ",\"a\":"
           << d.moved[i].thread_a << ",\"b\":" << d.moved[i].thread_b
           << "}";
    }
    os << "],\"queue_deltas\":[";
    for (size_t i = 0; i < d.queue_deltas.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"queue\":" << d.queue_deltas[i].queue << ",\"a\":"
           << d.queue_deltas[i].stall_a << ",\"b\":"
           << d.queue_deltas[i].stall_b << "}";
    }
    os << "],\"block_deltas\":[";
    for (size_t i = 0; i < d.block_deltas.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"thread\":" << d.block_deltas[i].thread
           << ",\"label\":";
        writeString(os, d.block_deltas[i].label);
        os << ",\"a\":" << d.block_deltas[i].stall_a << ",\"b\":"
           << d.block_deltas[i].stall_b << "}";
    }
    os << "]}";
}

} // namespace gmt
