#include "obs/timeline.hpp"

#include <cstddef>
#include <utility>

namespace gmt
{

const char *
coreStateName(CoreState s)
{
    switch (s) {
      case CoreState::Compute:
        return "compute";
      case CoreState::StallOperand:
        return "stall:operand";
      case CoreState::StallMemPort:
        return "stall:mem-port";
      case CoreState::StallQueueFull:
        return "stall:queue-full";
      case CoreState::StallQueueEmpty:
        return "stall:queue-empty";
      case CoreState::StallSaPort:
        return "stall:sa-port";
      default:
        return "idle";
    }
}

void
TimelineBuilder::init(int num_cores, int num_queues)
{
    tl_.core.assign(static_cast<size_t>(num_cores), {});
    tl_.queue.assign(static_cast<size_t>(num_queues), {});
    open_.assign(static_cast<size_t>(num_cores), {});
}

void
TimelineBuilder::noteCoreSpan(int core, CoreState s, uint64_t begin,
                              uint64_t end)
{
    if (begin >= end)
        return;
    Open &o = open_[core];
    if (o.active && o.state == s && o.end == begin) {
        o.end = end;
        return;
    }
    if (o.active)
        tl_.core[core].push_back({o.begin, o.end, o.state});
    o.active = true;
    o.begin = begin;
    o.end = end;
    o.state = s;
}

void
TimelineBuilder::noteQueue(int q, uint64_t cycle, int occupancy)
{
    tl_.queue[q].push_back({cycle, occupancy});
}

SimTimeline
TimelineBuilder::take()
{
    for (size_t c = 0; c < open_.size(); ++c) {
        if (open_[c].active)
            tl_.core[c].push_back(
                {open_[c].begin, open_[c].end, open_[c].state});
        open_[c].active = false;
    }
    return std::move(tl_);
}

} // namespace gmt
