#ifndef GMT_OBS_PROVENANCE_HPP
#define GMT_OBS_PROVENANCE_HPP

/**
 * @file
 * Decision provenance: a structured record of *why* every scheduling
 * decision came out the way it did — which partitioner step placed
 * each instruction (and what the alternatives scored), which COCO cut
 * chose each communication point (and what each point cost in the
 * flow graph), and how the queue allocator multiplexed placements
 * onto architected queues.
 *
 * The record is strictly deterministic: it is re-derived by a serial
 * re-run of the deciding algorithms (the obs-provenance pass), so it
 * is byte-identical across job counts, cache states, and warm/cold
 * max-flow — the same guarantee the plans themselves carry. The only
 * execution-dependent bits (whether a cut was solved warm or cold)
 * live in fields explicitly excluded from the canonical
 * serialization.
 *
 * Sits below the partitioners / COCO / queue allocator in the library
 * graph (links gmt_ir only), so all three can fill it through an
 * optional out-parameter without new cycles.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace gmt
{

// ---------------------------------------------------------------------------
// Partitioner provenance.

/** One thread GREMIO scored while placing a unit. */
struct ThreadCandidate
{
    int thread = 0;

    /** Load already scheduled on the thread (profile-weighted). */
    uint64_t busy = 0;

    /** Dynamic cost of the cross-thread values the unit would consume
     *  if placed here (the edge weights that decided the placement). */
    uint64_t comm = 0;

    /** busy + unit work + comm: the list scheduler's objective. */
    uint64_t score = 0;

    bool chosen = false;

    bool operator==(const ThreadCandidate &) const = default;
};

/**
 * One atomic placement decision: a PDG SCC (DSWP component, or a
 * GREMIO unit after loop/cycle merging) assigned to a thread.
 */
struct UnitDecision
{
    int unit = 0;   ///< unit id (PartitionProvenance::unit_of values)
    int thread = 0; ///< chosen thread (DSWP: pipeline stage)
    int order = 0;  ///< position in the decision sequence

    uint64_t work = 0; ///< profile-weighted work of the unit
    int num_members = 0;
    InstrId first_instr = -1; ///< lowest member id (anchor)

    /** DSWP only: greedy fill accounting at the decision point. */
    uint64_t acc_before = 0; ///< stage weight before this unit landed
    uint64_t target = 0;     ///< per-stage weight target

    /** GREMIO only: every thread scored, chosen one flagged. */
    std::vector<ThreadCandidate> candidates;

    bool operator==(const UnitDecision &) const = default;
};

/** Everything the partitioner decided, per instruction and per unit. */
struct PartitionProvenance
{
    std::string algorithm; ///< "DSWP" | "GREMIO"
    int num_threads = 0;

    /** GREMIO unit-formation structure. */
    int loop_merges = 0;  ///< SCCs fused by the innermost-loop rule
    int cycle_merges = 0; ///< units fused to break inter-unit cycles

    std::vector<int> unit_of;   ///< [InstrId] -> unit id
    std::vector<int> thread_of; ///< [InstrId] -> final thread

    /** Decisions in the order they were taken. */
    std::vector<UnitDecision> units;

    bool operator==(const PartitionProvenance &) const = default;
};

// ---------------------------------------------------------------------------
// Placement (COCO / default MTCG) provenance.

/** Cost attributed to one chosen communication point. */
struct CutPointCost
{
    BlockId block = kNoBlock;
    int pos = 0;

    /**
     * COCO cuts: summed capacity of the min-cut arcs selecting this
     * point (profile weight + §3.1.2 penalties). Default placements:
     * the profile weight of the point (estimated dynamic executions).
     */
    int64_t cost = 0;

    /** Min-cut arcs mapped onto the point (0 for default rules). */
    int arcs = 0;

    bool operator==(const CutPointCost &) const = default;
};

/** Why one placement communicates where it does. */
struct PlacementDecision
{
    /** Index into CommPlan::placements; -1 for elided decisions
     *  (the cut proved no communication is needed). */
    int index = -1;

    bool is_mem = false; ///< memory sync vs register data
    Reg reg = kNoReg;    ///< register carried (registers only)
    int src_thread = 0;
    int dst_thread = 0;

    /**
     * The deciding rule:
     *  - "coco-cut": min-cut of the §3.1 flow graph chose the points;
     *  - "coco-default": COCO ran but fell back to the default
     *    def-point placement (trivial/empty cut);
     *  - "mtcg-default": Algorithm 1 (communicate after the source
     *    def; branch operands right before the branch).
     */
    std::string rule;

    /** Algorithm-2 iteration the final point set first appeared in
     *  (1-based; 0 for non-COCO rules). */
    int iteration = 0;

    /** Canonical cut-problem index within an iteration's problem
     *  sequence (-1 for non-COCO rules). */
    int problem = -1;

    int64_t cut_cost = 0; ///< min-cut value (COCO rules)
    int graph_nodes = 0;  ///< solved flow graph size
    int graph_arcs = 0;
    int num_deps = 0; ///< memory: dependences covered by the cut

    /** Per-point cost breakdown, sorted by (block, pos). */
    std::vector<CutPointCost> points;

    /**
     * Execution-only (NOT canonical, excluded from the byte-compared
     * serialization): the consumed cut was solved from a warm-started
     * retained graph. Varies with warm_start and solve interleaving.
     */
    bool exec_warm = false;

    bool operator==(const PlacementDecision &) const = default;
};

/** Everything the placement stage decided. */
struct PlacementProvenance
{
    std::string source; ///< "coco" | "mtcg-default"
    int iterations = 0; ///< COCO repeat-until iterations (0 default)

    /** One decision per plan placement, in placement-index order. */
    std::vector<PlacementDecision> placements;

    /** Decisions whose final point set was empty (no communication
     *  materialized; the interesting "why is there NO queue" cases). */
    std::vector<PlacementDecision> elided;

    bool operator==(const PlacementProvenance &) const = default;
};

// ---------------------------------------------------------------------------
// Queue-allocation provenance.

/** Why one architected queue exists and what it multiplexes. */
struct QueueDecision
{
    int queue = -1;
    int src_thread = 0;
    int dst_thread = 0;

    /**
     * "identity" (one queue per placement, paper footnote 1) or
     * "pair-share" (round-robin over the thread pair's proportional
     * share of the architected budget).
     */
    std::string rule;

    /** Placements of this (src, dst) pair and queues granted to it. */
    int pair_placements = 0;
    int pair_queues = 0;

    /** Plan placement indices multiplexed onto this queue. */
    std::vector<int> placements;

    bool operator==(const QueueDecision &) const = default;
};

struct QueueProvenance
{
    int max_queues = 0; ///< 0 = unlimited (identity allocation)
    int num_queues = 0;
    std::vector<QueueDecision> queues; ///< in queue-id order

    bool operator==(const QueueProvenance &) const = default;
};

// ---------------------------------------------------------------------------
// The full per-cell record.

/** Decision provenance of one pipeline cell. */
struct Provenance
{
    std::string cell;     ///< "workload/SCHED[+COCO]"
    std::string workload;
    std::string scheduler;
    bool coco = false;
    int num_threads = 0;

    PartitionProvenance partition;
    PlacementProvenance placement;
    QueueProvenance queues;

    bool operator==(const Provenance &) const = default;

    /** Decision that placed instruction @p i (null if out of range). */
    const UnitDecision *unitDecisionFor(InstrId i) const;

    /** Decision behind allocated queue @p q (null if unknown). */
    const QueueDecision *queueDecisionFor(int q) const;

    /** Decision behind plan placement @p index (null if unknown). */
    const PlacementDecision *placementDecisionFor(int index) const;
};

/**
 * Canonical JSON serialization: schema:1 first, fixed key order,
 * arrays in deterministic order, no whitespace variance — the byte
 * representation the determinism tests and `gmt-explain --diff`
 * compare. @p include_exec additionally emits the execution-only
 * fields (exec_warm); leave it off for anything byte-compared.
 */
void writeProvenanceJson(std::ostream &os, const Provenance &p,
                         bool include_exec = false);

/** writeProvenanceJson into a string. */
std::string provenanceJson(const Provenance &p,
                           bool include_exec = false);

} // namespace gmt

#endif // GMT_OBS_PROVENANCE_HPP
