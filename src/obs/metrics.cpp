#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gmt
{

void
Histogram::observe(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (s_.count == 0) {
        s_.min = v;
        s_.max = v;
    } else {
        s_.min = std::min(s_.min, v);
        s_.max = std::max(s_.max, v);
    }
    ++s_.count;
    s_.sum += v;
    s_.sum_sq += v * v;
    int b = 0;
    if (v >= 1.0) {
        b = 1 + static_cast<int>(std::floor(std::log2(v)));
        b = std::clamp(b, 0, kBuckets - 1);
    }
    ++s_.buckets[b];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return s_;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    s_ = Snapshot{};
}

const char *
metricKindName(MetricSample::Kind k)
{
    switch (k) {
      case MetricSample::Kind::Counter:
        return "counter";
      case MetricSample::Kind::Gauge:
        return "gauge";
      default:
        return "histogram";
    }
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + gauges_.size() +
                histograms_.size());
    for (const auto &[name, c] : counters_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Counter;
        s.value = static_cast<int64_t>(c->value());
        out.push_back(std::move(s));
    }
    for (const auto &[name, g] : gauges_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Gauge;
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, h] : histograms_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Histogram;
        s.hist = h->snapshot();
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

} // namespace gmt
