#include "obs/stall_profile.hpp"

namespace gmt
{

namespace
{

std::string
mismatch(const char *what, int core, uint64_t attributed,
         uint64_t aggregate)
{
    return std::string(what) + " mismatch on core " +
           std::to_string(core) + ": attributed " +
           std::to_string(attributed) + " != aggregate " +
           std::to_string(aggregate);
}

} // namespace

std::string
checkStallConservation(const SimProfile &profile,
                       const std::vector<CoreStallTotals> &aggregates)
{
    if (profile.blocks.size() != aggregates.size())
        return "core count mismatch: profile has " +
               std::to_string(profile.blocks.size()) +
               ", aggregates have " +
               std::to_string(aggregates.size());

    uint64_t core_qfull = 0, core_qempty = 0, core_saport = 0;
    for (size_t c = 0; c < aggregates.size(); ++c) {
        BlockStallProf sum;
        for (const BlockStallProf &b : profile.blocks[c]) {
            sum.operand += b.operand;
            sum.mem_port += b.mem_port;
            sum.queue_full += b.queue_full;
            sum.queue_empty += b.queue_empty;
            sum.sa_port += b.sa_port;
        }
        const CoreStallTotals &agg = aggregates[c];
        const int ci = static_cast<int>(c);
        if (sum.operand != agg.operand)
            return mismatch("stall_operand", ci, sum.operand,
                            agg.operand);
        if (sum.mem_port != agg.mem_port)
            return mismatch("stall_mem_port", ci, sum.mem_port,
                            agg.mem_port);
        if (sum.queue_full != agg.queue_full)
            return mismatch("stall_queue_full", ci, sum.queue_full,
                            agg.queue_full);
        if (sum.queue_empty != agg.queue_empty)
            return mismatch("stall_queue_empty", ci, sum.queue_empty,
                            agg.queue_empty);
        if (sum.sa_port != agg.sa_port)
            return mismatch("stall_sa_port", ci, sum.sa_port,
                            agg.sa_port);
        core_qfull += agg.queue_full;
        core_qempty += agg.queue_empty;
        core_saport += agg.sa_port;
    }

    uint64_t q_full = 0, q_empty = 0, q_saport = 0;
    for (const QueueStallProf &q : profile.queues) {
        q_full += q.full_cycles;
        q_empty += q.empty_cycles;
        q_saport += q.sa_port_cycles;
    }
    if (q_full != core_qfull)
        return "per-queue full_cycles sum " + std::to_string(q_full) +
               " != cores' stall_queue_full sum " +
               std::to_string(core_qfull);
    if (q_empty != core_qempty)
        return "per-queue empty_cycles sum " +
               std::to_string(q_empty) +
               " != cores' stall_queue_empty sum " +
               std::to_string(core_qempty);
    if (q_saport != core_saport)
        return "per-queue sa_port_cycles sum " +
               std::to_string(q_saport) +
               " != cores' stall_sa_port sum " +
               std::to_string(core_saport);
    return "";
}

} // namespace gmt
