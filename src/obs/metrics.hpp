#ifndef GMT_OBS_METRICS_HPP
#define GMT_OBS_METRICS_HPP

/**
 * @file
 * Unified metrics registry: named counters, gauges, and histograms
 * that every subsystem (pass manager, interpreters, MT verifier,
 * timing simulator) publishes into. One process-wide registry
 * (MetricsRegistry::global()) backs the `type:"metrics"` records in
 * the JSONL stats stream; tests construct private registries.
 *
 * Concurrency: instrument handles returned by counter()/gauge()/
 * histogram() are stable for the registry's lifetime, so the common
 * pattern is one locked name lookup followed by lock-free updates
 * (counters and gauges are single atomics; histograms take a small
 * per-instrument lock). Snapshots are consistent per instrument, not
 * across instruments — good enough for observability, which is all
 * this is for.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gmt
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Distribution summary: count/sum/min/max plus power-of-two buckets
 * (bucket i counts observations in [2^(i-1), 2^i); bucket 0 is
 * everything below 1). Fixed 32-bucket layout keeps snapshots flat.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 32;

    struct Snapshot
    {
        uint64_t count = 0;
        double sum = 0.0;
        double sum_sq = 0.0; ///< enables stddev without raw samples
        double min = 0.0;    ///< meaningless when count == 0
        double max = 0.0;
        uint64_t buckets[kBuckets] = {};
    };

    void observe(double v);
    Snapshot snapshot() const;
    void reset();

  private:
    mutable std::mutex mu_;
    Snapshot s_;
};

/** One instrument's state, flattened for serialization. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;

    /** Counter/gauge value. */
    int64_t value = 0;

    /** Histogram summary (zero for counters/gauges). */
    Histogram::Snapshot hist;
};

const char *metricKindName(MetricSample::Kind k);

/**
 * Named instrument registry. Lookups are mutex-protected; the
 * returned references stay valid until the registry is destroyed
 * (instruments are never removed, reset() only zeroes them).
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All instruments, sorted by name (deterministic output order). */
    std::vector<MetricSample> snapshot() const;

    /** Zero every instrument (tests; instruments stay registered). */
    void reset();

    /** The process-wide registry everything publishes into. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace gmt

#endif // GMT_OBS_METRICS_HPP
