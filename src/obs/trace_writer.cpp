#include "obs/trace_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace gmt
{

namespace
{

/** RFC 8259 string escaping (same subset as driver/stats.cpp). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

TraceCollector::TraceCollector()
    : t0_(std::chrono::steady_clock::now())
{
}

double
TraceCollector::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
}

void
TraceCollector::addEvent(std::string rendered)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(rendered));
}

int64_t
TraceCollector::laneForThisThread()
{
    // One lane per OS thread per collector; thread_local would pin
    // the id across collectors, so key the cache on the collector.
    thread_local TraceCollector *cached_for = nullptr;
    thread_local int64_t cached_lane = 0;
    if (cached_for == this)
        return cached_lane;
    int64_t lane;
    {
        std::lock_guard<std::mutex> lock(mu_);
        lane = next_lane_++;
    }
    cached_for = this;
    cached_lane = lane;
    nameThread(kPipelinePid, lane,
               "worker-" + std::to_string(lane));
    return lane;
}

int
TraceCollector::registerProcess(const std::string &name)
{
    int pid;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pid = next_pid_++;
    }
    addEvent("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) +
             ",\"tid\":0,\"args\":{\"name\":\"" + jsonEscape(name) +
             "\"}}");
    return pid;
}

void
TraceCollector::nameThread(int pid, int64_t tid,
                           const std::string &name)
{
    addEvent("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
             ",\"args\":{\"name\":\"" + jsonEscape(name) + "\"}}");
}

void
TraceCollector::completeEvent(
    const std::string &name, const std::string &cat, int pid,
    int64_t tid, double ts_us, double dur_us,
    const std::vector<std::pair<std::string, std::string>> &str_args,
    const std::vector<std::pair<std::string, int64_t>> &num_args)
{
    std::string e = "{\"name\":\"" + jsonEscape(name) +
                    "\",\"cat\":\"" + jsonEscape(cat) +
                    "\",\"ph\":\"X\",\"ts\":" + num(ts_us) +
                    ",\"dur\":" + num(dur_us) +
                    ",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid);
    if (!str_args.empty() || !num_args.empty()) {
        e += ",\"args\":{";
        bool first = true;
        for (const auto &[k, v] : str_args) {
            if (!first)
                e += ',';
            first = false;
            e += '"' + jsonEscape(k) + "\":\"" + jsonEscape(v) + '"';
        }
        for (const auto &[k, v] : num_args) {
            if (!first)
                e += ',';
            first = false;
            e += '"' + jsonEscape(k) + "\":" + std::to_string(v);
        }
        e += '}';
    }
    e += '}';
    addEvent(std::move(e));
}

void
TraceCollector::counterEvent(const std::string &name, int pid,
                             double ts_us, const std::string &series,
                             int64_t value)
{
    addEvent("{\"name\":\"" + jsonEscape(name) +
             "\",\"ph\":\"C\",\"ts\":" + num(ts_us) +
             ",\"pid\":" + std::to_string(pid) +
             ",\"tid\":0,\"args\":{\"" + jsonEscape(series) +
             "\":" + std::to_string(value) + "}}");
}

size_t
TraceCollector::numEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void
TraceCollector::write(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"schema\":1,\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (size_t i = 0; i < events_.size(); ++i) {
        if (i)
            os << ",\n";
        else
            os << "\n";
        os << events_[i];
    }
    os << "\n]}\n";
}

void
TraceCollector::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open trace file ", path);
    write(out);
}

std::string
TraceCollector::json() const
{
    std::ostringstream ss;
    write(ss);
    return ss.str();
}

} // namespace gmt
