/**
 * @file
 * Domain scenario: pipeline-parallelizing a streaming media kernel.
 *
 * Runs the ADPCM decoder (the paper's adpcmdec benchmark) through the
 * whole pipeline with DSWP, comparing the MTCG and COCO placements:
 * dynamic instruction breakdown, per-thread statistics, queue-depth
 * sensitivity, and the simulated speedup — what a compiler engineer
 * would look at when deciding whether the pipeline split is worth it.
 */

#include <iostream>

#include "driver/experiment.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Workload w = makeAdpcmDec();
    std::cout << "DSWP pipeline study: " << w.function_name << " ("
              << w.name << ")\n\n";

    // One cached batch: the MTCG/COCO pair shares everything through
    // `partition`, and the queue-depth sweep below reuses the COCO
    // plan — the experiment runner computes each shared stage once.
    PipelineOptions base;
    base.scheduler = Scheduler::Dswp;
    base.use_coco = false;
    PipelineOptions opt = base;
    opt.use_coco = true;

    std::vector<ExperimentCell> cells{{w, base}, {w, opt}};
    const int depths[] = {1, 4, 32};
    for (int depth : depths) {
        PipelineOptions o = opt;
        o.queue_capacity = depth;
        cells.push_back({w, o});
    }

    ExperimentRunner runner;
    const auto results = runner.runAll(cells);
    const PipelineResult &mtcg = results[0];
    const PipelineResult &coco = results[1];

    Table t("MTCG vs COCO under DSWP");
    t.setHeader({"Metric", "MTCG", "MTCG+COCO"});

    t.addRow({"computation instrs", std::to_string(mtcg.computation),
              std::to_string(coco.computation)});
    t.addRow({"replicated branches",
              std::to_string(mtcg.duplicated_branches),
              std::to_string(coco.duplicated_branches)});
    t.addRow({"register produce/consume",
              std::to_string(mtcg.reg_comm),
              std::to_string(coco.reg_comm)});
    t.addRow({"memory syncs", std::to_string(mtcg.mem_sync),
              std::to_string(coco.mem_sync)});
    t.addRow({"cycles (2 cores)", std::to_string(mtcg.mt_cycles),
              std::to_string(coco.mt_cycles)});
    t.addRow({"speedup vs 1 core", Table::fmt(mtcg.speedup(), 2) + "x",
              Table::fmt(coco.speedup(), 2) + "x"});
    t.print(std::cout);

    std::cout << "\nQueue-depth sensitivity (DSWP+COCO):\n";
    for (size_t di = 0; di < std::size(depths); ++di)
        std::cout << "  depth " << depths[di] << ": "
                  << Table::fmt(results[2 + di].speedup(), 2) << "x\n";
    std::cout << "\nDeeper queues let the producer stage run ahead — "
                 "the decoupling DSWP is named for.\n";
    return 0;
}
