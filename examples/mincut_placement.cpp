/**
 * @file
 * Walk-through of the paper's Figure 4: how COCO's min-cut moves a
 * register communication out of a loop.
 *
 * Two back-to-back loops are split across two threads; loop 1 defines
 * r1 every iteration, loop 2 only ever uses the final value. The
 * example prints the flow-graph reasoning (liveness region, safety,
 * candidate cut costs), both placements, and the generated code so
 * the effect is visible instruction by instruction.
 */

#include <iostream>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"

using namespace gmt;

int
main()
{
    // Paper Figure 4(a): loop 1 (blocks B1-B2) then loop 2 (B3-B4).
    FunctionBuilder b("figure4");
    Reg n = b.param();
    BlockId l1 = b.newBlock("B2");
    BlockId pre = b.newBlock("B3");
    BlockId l2 = b.newBlock("B4");
    BlockId out = b.newBlock("B5");

    b.setBlock(l1);
    Reg i = b.func().newReg();
    Reg r1 = b.func().newReg();
    b.addInto(r1, r1, i);       // B: r1 = f(r1, i), every iteration
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c1 = b.cmpLt(i, n);
    b.br(c1, l1, pre);          // C

    b.setBlock(pre);
    Reg j = b.constI(0);        // D
    b.jmp(l2);

    b.setBlock(l2);
    Reg acc = b.func().newReg();
    b.addInto(acc, acc, r1);    // E: uses only the final r1
    Reg one2 = b.constI(1);
    b.addInto(j, j, one2);
    Reg c2 = b.cmpLt(j, n);
    b.br(c2, l2, out);          // F

    b.setBlock(out);
    b.ret({acc});               // G
    Function f = b.finish();
    splitCriticalEdges(f);
    verifyOrDie(f);
    std::cout << "=== Original (Figure 4(a)) ===\n"
              << functionToString(f);

    // Partition: T_s = loop 1, T_t = the rest (paper's split).
    ThreadPartition partition;
    partition.num_threads = 2;
    partition.assign.assign(f.numInstrs(), 0);
    for (InstrId k = 0; k < f.numInstrs(); ++k) {
        if (f.instr(k).block != l1)
            partition.assign[k] = 1;
    }

    MemoryImage mem;
    auto run = interpret(f, {10}, mem);
    auto profile = EdgeProfile::fromRun(f, run.profile);
    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);

    std::cout << "\nEdge profile: loop 1 body runs "
              << profile.blockWeight(l1) << "x, the point after it "
              << profile.blockWeight(pre)
              << "x — the min-cut prefers the cold point.\n";

    // MTCG placement: r1 produced after its def, inside loop 1.
    CommPlan mtcg_plan = defaultMtcgPlan(f, pdg, partition, cd);
    MtProgram mtcg_prog = runMtcg(f, pdg, partition, mtcg_plan, cd);
    MemoryImage m1;
    auto mtcg_run = interpretMt(mtcg_prog, {10}, m1);
    std::cout << "\nMTCG: " << mtcg_run.totalCommunication()
              << " dynamic communication instructions, "
              << mtcg_run.stats[1].duplicated_branches
              << " replicated-branch executions in thread 2\n";

    // COCO placement: min-cut moves the produce past the loop.
    auto coco = cocoOptimize(f, pdg, partition, cd, profile);
    for (const auto &pl : coco.plan.placements) {
        if (pl.kind != CommKind::RegisterData)
            continue;
        std::cout << "COCO places r" << pl.reg << " at:";
        for (const auto &pt : pl.points)
            std::cout << " " << f.block(pt.block).label() << ":"
                      << pt.pos << " (weight "
                      << profile.pointWeight(pt) << ")";
        std::cout << "\n";
    }
    MtProgram coco_prog = runMtcg(f, pdg, partition, coco.plan, cd);
    MemoryImage m2;
    auto coco_run = interpretMt(coco_prog, {10}, m2);
    std::cout << "COCO: " << coco_run.totalCommunication()
              << " dynamic communication instructions, "
              << coco_run.stats[1].duplicated_branches
              << " replicated-branch executions in thread 2\n";

    std::cout << "\n=== Thread 2 under MTCG (contains loop 1) ===\n"
              << functionToString(mtcg_prog.threads[1]);
    std::cout << "\n=== Thread 2 under COCO (loop 1 gone) ===\n"
              << functionToString(coco_prog.threads[1]);

    // The same kernel end to end through the staged pass manager
    // (GREMIO picks its own partition, so the exact split differs
    // from the hand partition above, but the COCO effect is the
    // same: communication sinks out of the loop).
    Workload w;
    w.name = "figure4";
    w.function_name = f.name();
    w.func = f;
    w.train_args = {10};
    w.ref_args = {10};

    PipelineOptions opts;
    opts.scheduler = Scheduler::Gremio;
    opts.use_coco = true;
    PipelineContext ctx(w, opts);
    PassManager::standardPipeline().run(ctx);
    std::cout << "\n=== figure4 through the standard pipeline ===\n"
              << "communication: " << ctx.result.communication()
              << " dynamic instructions, speedup "
              << ctx.result.speedup() << "x; passes:";
    for (const PassStats &ps : ctx.pass_stats)
        std::cout << " " << ps.pass;
    std::cout << "\n";
    return 0;
}
