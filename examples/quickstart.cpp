/**
 * @file
 * Quickstart: the whole library in one file.
 *
 * Builds a small function with the IR builder, runs it single-
 * threaded, partitions it with DSWP, generates multi-threaded code
 * with MTCG, optimizes the communication with COCO, executes the
 * result on the functional MT interpreter, and times it on the
 * dual-core simulator — then replays the same cell through the
 * staged pass manager, which runs those stages as named passes with
 * per-pass timing (driver/pass_manager.hpp).
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "partition/dswp.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "sim/cmp_simulator.hpp"

using namespace gmt;

/** sum_{i<n} (i*i + i) with the square computed through memory. */
static Function
buildExample()
{
    FunctionBuilder b("quickstart");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId done = b.newBlock("done");

    b.setBlock(head);
    Reg i = b.constI(0);
    Reg sum = b.constI(0);
    b.jmp(body);

    b.setBlock(body);
    Reg sq = b.mul(i, i);
    b.store(i, 0, sq, 1);          // scratch[i] = i*i
    Reg back = b.load(i, 0, 1);    // and read it back
    b.addInto(sum, sum, b.add(back, i));
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, done);

    b.setBlock(done);
    b.ret({sum});
    return b.finish();
}

int
main()
{
    // 1. Build and verify IR.
    Function f = buildExample();
    splitCriticalEdges(f);
    verifyOrDie(f);
    std::cout << "=== IR ===\n" << functionToString(f);

    // 2. Reference run + profile (the paper profiles on a train
    //    input; here we reuse the same input for brevity).
    MemoryImage mem;
    mem.alloc(64);
    auto st = interpret(f, {50}, mem);
    std::cout << "\nsingle-threaded result: " << st.live_outs[0]
              << " (" << st.dyn_instrs << " dynamic instructions)\n";
    auto profile = EdgeProfile::fromRun(f, st.profile);

    // 3. PDG -> DSWP partition.
    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    ThreadPartition partition =
        dswpPartition(pdg, profile, {.num_threads = 2});

    // 4. COCO placement + MTCG code generation.
    auto coco = cocoOptimize(f, pdg, partition, cd, profile);
    MtProgram prog = runMtcg(f, pdg, partition, coco.plan, cd);
    for (const auto &thread : prog.threads)
        std::cout << "\n=== " << thread.name() << " ===\n"
                  << functionToString(thread);

    // 5. Execute the multi-threaded code.
    MemoryImage mt_mem;
    mt_mem.alloc(64);
    auto mt = interpretMt(prog, {50}, mt_mem);
    std::cout << "\nmulti-threaded result:  " << mt.live_outs[0]
              << " (communication: " << mt.totalCommunication()
              << " dynamic instructions)\n";

    // 6. Time both on the simulated dual-core CMP.
    MemoryImage sim_mem1, sim_mem2;
    sim_mem1.alloc(64);
    sim_mem2.alloc(64);
    auto cfg = MachineConfig::paperDefault();
    auto st_sim = simulateSingleThreaded(f, {50}, sim_mem1, cfg);
    CmpSimulator sim(cfg);
    auto mt_sim = sim.run(prog, {50}, sim_mem2);
    std::cout << "cycles: " << st_sim.cycles << " (1 thread) -> "
              << mt_sim.cycles << " (2 threads), speedup "
              << static_cast<double>(st_sim.cycles) /
                     static_cast<double>(mt_sim.cycles)
              << "x\n";

    // 7. The same cell through the staged pass manager — what
    //    runPipeline() and the bench harness do: wrap the function
    //    as a Workload, run the named passes, read the result and
    //    the per-pass timings.
    Workload w;
    w.name = "quickstart";
    w.function_name = f.name();
    w.func = buildExample();
    w.mem_cells = 64;
    w.train_args = {50};
    w.ref_args = {50};

    PipelineOptions opts;
    opts.scheduler = Scheduler::Dswp;
    opts.use_coco = true;
    PipelineContext ctx(w, opts);
    PassManager::standardPipeline().run(ctx);

    std::cout << "\n=== pass pipeline (same cell, named passes) ===\n";
    for (const PassStats &ps : ctx.pass_stats)
        std::cout << "  " << ps.pass << ": "
                  << static_cast<int>(ps.wall_ms * 1000) << " us\n";
    std::cout << "pipeline speedup: " << ctx.result.speedup()
              << "x (matches step 6)\n";
    return 0;
}
