/**
 * @file
 * Domain scenario: the paper's headline case.
 *
 * Parallelizes the ks kernel (Kernighan-Lin FindMaxGpAndSwap) with
 * GREMIO and shows why it is COCO's best case: the candidate-scan
 * loop's only cross-thread products are its final maxgain/best
 * values, yet MTCG communicates them at every definition — forcing
 * the second thread to replicate the entire scan loop just to consume
 * them. COCO's min-cut moves the communication past the loop and the
 * replicated loop disappears (paper: 73.7% of dynamic communication
 * removed, +47.6% speedup).
 */

#include <iostream>

#include "driver/experiment.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Workload w = makeKs();
    std::cout << "GREMIO scheduling study: " << w.function_name
              << " (" << w.name << ")\n\n";

    PipelineOptions base;
    base.scheduler = Scheduler::Gremio;
    base.use_coco = false;
    PipelineOptions opt = base;
    opt.use_coco = true;

    // Both cells share IR/profile/PDG/partition via the runner's
    // artifact cache.
    ExperimentRunner runner;
    const auto results = runner.runAll({{w, base}, {w, opt}});
    const PipelineResult &mtcg = results[0];
    const PipelineResult &coco = results[1];

    Table t("MTCG vs COCO under GREMIO");
    t.setHeader({"Metric", "MTCG", "MTCG+COCO"});
    t.addRow({"communication instrs",
              std::to_string(mtcg.communication()),
              std::to_string(coco.communication())});
    t.addRow({"replicated branches",
              std::to_string(mtcg.duplicated_branches),
              std::to_string(coco.duplicated_branches)});
    t.addRow({"speedup vs 1 core", Table::fmt(mtcg.speedup(), 2) + "x",
              Table::fmt(coco.speedup(), 2) + "x"});
    t.print(std::cout);

    double removed =
        100.0 * (1.0 - static_cast<double>(coco.communication()) /
                           static_cast<double>(mtcg.communication()));
    std::cout << "\nCOCO removed " << Table::fmt(removed, 1)
              << "% of the dynamic communication (paper: 73.7% for "
                 "this benchmark) and the replicated scan loop is "
                 "gone: "
              << mtcg.duplicated_branches << " -> "
              << coco.duplicated_branches
              << " dynamic replicated branches.\n";
    return 0;
}
