// Property tests for the random workload generator and the repro
// reducer behind gmt-fuzz: every seed yields a valid, terminating,
// round-trippable cell, and the reducer shrinks while preserving a
// failure predicate.

#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "workloads/generate.hpp"
#include "workloads/serialize.hpp"

namespace gmt
{
namespace
{

constexpr uint64_t kSeeds = 40;

TEST(Generate, EverySeedVerifiesAndTerminates)
{
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Workload w = generateWorkload(seed);
        EXPECT_EQ(w.name, "gen" + std::to_string(seed));
        EXPECT_TRUE(verifyFunction(w.func).empty());
        MemoryImage mem;
        mem.alloc(w.mem_cells);
        w.fill(mem, true);
        auto run = interpret(w.func, w.ref_args, mem, 50'000'000);
        EXPECT_FALSE(run.live_outs.empty());
    }
}

TEST(Generate, DeterministicPerSeed)
{
    for (uint64_t seed : {0ull, 7ull, 123456789ull}) {
        Workload a = generateWorkload(seed);
        Workload b = generateWorkload(seed);
        EXPECT_EQ(workloadToText(a), workloadToText(b));
        EXPECT_EQ(a.digest, b.digest);
    }
    EXPECT_NE(workloadToText(generateWorkload(1)),
              workloadToText(generateWorkload(2)));
}

TEST(Generate, CellsRoundTripBitIdentically)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Workload w = generateWorkload(seed);
        std::string text = workloadToText(w);
        Workload loaded = workloadFromText(text, "<test>");
        EXPECT_EQ(workloadToText(loaded), text);
        EXPECT_EQ(loaded.digest, w.digest);
        // Generated functions are canonicalized, so ids round-trip.
        EXPECT_EQ(functionToString(loaded.func),
                  functionToString(w.func));
    }
}

TEST(Generate, PipelineRunsCleanOnSampleSeeds)
{
    // A micro fuzz-smoke inline in the test suite: a few seeds through
    // the full matrix with the pipeline's own oracles armed.
    for (uint64_t seed : {3ull, 11ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Workload w = generateWorkload(seed);
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions opts;
                opts.scheduler = sched;
                opts.use_coco = coco;
                opts.simulate = false;
                EXPECT_NO_THROW(runPipeline(w, opts))
                    << schedulerName(sched) << (coco ? "+COCO" : "");
            }
        }
    }
}

TEST(Reduce, ShrinksWhilePreservingPredicate)
{
    // Artificial "failure": the cell still contains a store to alias
    // class 1. The reducer must keep at least one while deleting the
    // bulk of the program.
    auto has_store = [](const Workload &c) {
        for (InstrId i = 0; i < c.func.numInstrs(); ++i) {
            const Instr &in = c.func.instr(i);
            if (in.op == Opcode::Store && in.alias == 1)
                return true;
        }
        return false;
    };

    // Not every seed rolls an alias-1 store; take the first that does.
    Workload w = generateWorkload(0);
    for (uint64_t seed = 0; !has_store(w); ++seed) {
        ASSERT_LT(seed, 32u) << "no seed with an alias-1 store";
        w = generateWorkload(seed);
    }
    int before = w.func.numInstrs();

    Workload small = reduceWorkload(w, has_store);
    EXPECT_TRUE(has_store(small));
    EXPECT_TRUE(verifyFunction(small.func).empty());
    EXPECT_LT(small.func.numInstrs(), before / 2);

    // The reduced cell is canonical: its dump reloads bit-identically.
    std::string text = workloadToText(small);
    EXPECT_EQ(workloadToText(workloadFromText(text, "<t>")), text);
}

TEST(Reduce, ReturnsOriginalWhenPredicateNeverHeld)
{
    Workload w = generateWorkload(9);
    auto never = [](const Workload &) { return false; };
    Workload same = reduceWorkload(w, never);
    EXPECT_EQ(functionToString(same.func), functionToString(w.func));
}

} // namespace
} // namespace gmt
