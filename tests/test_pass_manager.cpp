/**
 * @file
 * Pass-manager, artifact-cache, and experiment-runner tests: pass
 * ordering, cache hit/miss and key-level invalidation on option
 * change, parallel-vs-serial bit-identical determinism, and the
 * structured stats sink.
 */

#include <atomic>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "driver/experiment.hpp"
#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

const std::vector<std::string> kStandardPasses = {
    "build-ir", "edge-split", "verify",      "profile",
    "pdg",      "partition",  "placement",   "mtcg",
    "queue-alloc", "verify-mt", "mt-run",    "sim",
    "autotune", "obs-profile", "obs-provenance"};

TEST(PassManager, StandardPipelineOrder)
{
    EXPECT_EQ(PassManager::standardPipeline().passNames(),
              kStandardPasses);
}

TEST(PassManager, RunRecordsOneStatsEntryPerPassInOrder)
{
    Workload w = makeAdpcmDec();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Gremio;
    PipelineContext ctx(w, opts);
    PassManager::standardPipeline().run(ctx);

    ASSERT_EQ(ctx.pass_stats.size(), kStandardPasses.size());
    for (size_t i = 0; i < kStandardPasses.size(); ++i) {
        EXPECT_EQ(ctx.pass_stats[i].pass, kStandardPasses[i]);
        EXPECT_GE(ctx.pass_stats[i].wall_ms, 0.0);
        EXPECT_FALSE(ctx.pass_stats[i].cached) << kStandardPasses[i];
    }
    EXPECT_GT(ctx.result.computation, 0u);
    EXPECT_GT(ctx.result.st_cycles, 0u);
}

TEST(PassManager, CheckInvariantsPasses)
{
    Workload w = makeKs();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Dswp;
    opts.use_coco = true;
    opts.check_invariants = true;
    opts.simulate = false;
    PipelineContext ctx(w, opts);
    PassManager::standardPipeline().run(ctx);
    EXPECT_GT(ctx.result.computation, 0u);
}

TEST(PassManager, MatchesRunPipelineWrapper)
{
    Workload w = makeAdpcmEnc();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Dswp;
    opts.use_coco = true;

    PipelineContext ctx(w, opts);
    PassManager::standardPipeline().run(ctx);
    EXPECT_EQ(ctx.result, runPipeline(w, opts));
}

TEST(ArtifactCache, ComputeOnceAndCounters)
{
    ArtifactCache cache;
    std::atomic<int> computes{0};
    auto compute = [&]() -> std::shared_ptr<const int> {
        ++computes;
        return std::make_shared<int>(42);
    };

    bool hit = true;
    auto a = cache.getOrCompute<int>("k", compute, &hit);
    EXPECT_FALSE(hit);
    auto b = cache.getOrCompute<int>("k", compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(*a, 42);

    auto c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.entries, 1u);

    cache.clear();
    c = cache.counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(c.entries, 0u);
}

TEST(ArtifactCache, ThrowingComputePoisonsEntry)
{
    ArtifactCache cache;
    auto boom = [&]() -> std::shared_ptr<const int> {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(cache.getOrCompute<int>("k", boom), std::runtime_error);
    // The entry is poisoned: later lookups rethrow, never recompute.
    auto ok = [&]() -> std::shared_ptr<const int> {
        return std::make_shared<int>(1);
    };
    EXPECT_THROW(cache.getOrCompute<int>("k", ok), std::runtime_error);
}

/** COCO on/off cells share every stage up to (and including) the
 *  partition; placement and later are distinct. */
TEST(ArtifactCache, SharedPrefixHitsAcrossCocoToggle)
{
    Workload w = makeAdpcmDec();
    PipelineOptions base;
    base.scheduler = Scheduler::Dswp;
    base.use_coco = false;
    PipelineOptions opt = base;
    opt.use_coco = true;

    ArtifactCache cache;
    PipelineContext first(w, base);
    first.cache = &cache;
    PassManager::standardPipeline().run(first);

    PipelineContext second(w, opt);
    second.cache = &cache;
    PassManager::standardPipeline().run(second);

    auto statOf = [&](const PipelineContext &ctx, const char *pass)
        -> const PassStats & {
        for (const auto &ps : ctx.pass_stats)
            if (ps.pass == pass)
                return ps;
        ADD_FAILURE() << "no pass " << pass;
        return ctx.pass_stats.front();
    };

    for (const char *shared :
         {"edge-split", "profile", "pdg", "partition"}) {
        EXPECT_FALSE(statOf(first, shared).cached) << shared;
        EXPECT_TRUE(statOf(second, shared).cached) << shared;
    }
    // The COCO cell's placement (and everything after) is a miss.
    for (const char *distinct : {"placement", "mtcg", "mt-run"})
        EXPECT_FALSE(statOf(second, distinct).cached) << distinct;
    // ...but the single-threaded reference run/sim is shared too.
    EXPECT_GT(cache.counters().hits, 0u);
}

/** Option changes land on different keys — invalidation by
 *  construction, no explicit invalidate call anywhere. */
TEST(ArtifactCache, KeysChangeExactlyWithTheirOptionPrefix)
{
    Workload w = makeAdpcmDec();
    PipelineOptions a;
    a.scheduler = Scheduler::Dswp;
    a.use_coco = true;
    PipelineContext ca(w, a);

    // Same options -> same keys.
    {
        PipelineContext cb(w, a);
        EXPECT_EQ(partitionKey(ca), partitionKey(cb));
        EXPECT_EQ(planKey(ca), planKey(cb));
        EXPECT_EQ(queueAllocKey(ca), queueAllocKey(cb));
    }
    // Scheduler change invalidates partition and downstream, not the
    // schedule-independent stages.
    {
        PipelineOptions b = a;
        b.scheduler = Scheduler::Gremio;
        PipelineContext cb(w, b);
        EXPECT_EQ(irKey(ca), irKey(cb));
        EXPECT_EQ(profileKey(ca), profileKey(cb));
        EXPECT_EQ(pdgKey(ca), pdgKey(cb));
        EXPECT_NE(partitionKey(ca), partitionKey(cb));
        EXPECT_NE(planKey(ca), planKey(cb));
    }
    // Profile source feeds the partition too.
    {
        PipelineOptions b = a;
        b.static_profile = true;
        PipelineContext cb(w, b);
        EXPECT_NE(profileKey(ca), profileKey(cb));
        EXPECT_NE(partitionKey(ca), partitionKey(cb));
    }
    // A COCO knob invalidates the plan but nothing upstream.
    {
        PipelineOptions b = a;
        b.coco.multi_pair_memory = false;
        PipelineContext cb(w, b);
        EXPECT_EQ(partitionKey(ca), partitionKey(cb));
        EXPECT_NE(planKey(ca), planKey(cb));
        EXPECT_NE(mtcgKey(ca), mtcgKey(cb));
    }
    // Queue capacity only reaches MTCG and later.
    {
        PipelineOptions b = a;
        b.queue_capacity = 4;
        PipelineContext cb(w, b);
        EXPECT_EQ(planKey(ca), planKey(cb));
        EXPECT_NE(mtcgKey(ca), mtcgKey(cb));
    }
    // Queue budget only reaches the allocator.
    {
        PipelineOptions b = a;
        b.max_queues = 2;
        PipelineContext cb(w, b);
        EXPECT_EQ(mtcgKey(ca), mtcgKey(cb));
        EXPECT_NE(queueAllocKey(ca), queueAllocKey(cb));
    }
    // Different workload shares nothing.
    {
        Workload v = makeKs();
        PipelineContext cb(v, a);
        EXPECT_NE(irKey(ca), irKey(cb));
        EXPECT_NE(pdgKey(ca), pdgKey(cb));
        EXPECT_NE(partitionKey(ca), partitionKey(cb));
    }
    // Default queue capacity is the per-scheduler paper value.
    EXPECT_EQ(resolvedQueueCapacity(a), 32);
    PipelineOptions g = a;
    g.scheduler = Scheduler::Gremio;
    EXPECT_EQ(resolvedQueueCapacity(g), 1);
    g.queue_capacity = 7;
    EXPECT_EQ(resolvedQueueCapacity(g), 7);
}

std::vector<ExperimentCell>
determinismGrid()
{
    std::vector<ExperimentCell> cells;
    for (const Workload &w : {makeAdpcmDec(), makeKs()})
        for (Scheduler s : {Scheduler::Dswp, Scheduler::Gremio})
            for (bool coco : {false, true}) {
                PipelineOptions o;
                o.scheduler = s;
                o.use_coco = coco;
                cells.push_back({w, o});
            }
    return cells;
}

/** The acceptance oracle: parallel + cached == serial + uncached,
 *  field for field, in cell order. */
TEST(ExperimentRunner, ParallelMatchesSerialBitIdentical)
{
    auto cells = determinismGrid();

    ExperimentOptions serial;
    serial.jobs = 1;
    serial.use_cache = false;
    ExperimentRunner serial_runner(serial);
    auto expected = serial_runner.runAll(cells);
    EXPECT_EQ(serial_runner.effectiveJobs(), 1);

    ExperimentOptions par;
    par.jobs = 4;
    par.use_cache = true;
    ExperimentRunner par_runner(par);
    auto got = par_runner.runAll(cells);
    EXPECT_EQ(par_runner.effectiveJobs(), 4);

    ASSERT_EQ(expected.size(), got.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(expected[i], got[i]) << "cell " << i;

    EXPECT_EQ(par_runner.summary().cells, static_cast<int>(cells.size()));
    EXPECT_GT(par_runner.summary().cache.hits, 0u);
    EXPECT_EQ(serial_runner.summary().cache.hits, 0u);
}

TEST(ExperimentRunner, RepeatedBatchIsAllHitsAndIdentical)
{
    auto cells = determinismGrid();
    ExperimentRunner runner;
    auto first = runner.runAll(cells);
    auto after_first = runner.cache().counters();
    auto second = runner.runAll(cells);
    auto after_second = runner.cache().counters();
    EXPECT_EQ(first, second);
    // Second batch recomputes nothing: no new misses, only hits.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(ExperimentRunner, FirstFailingCellErrorInCellOrder)
{
    Workload bad = makeAdpcmDec();
    bad.ref_args.clear(); // interpreter will reject missing args
    std::vector<ExperimentCell> cells{{bad, {}}, {makeKs(), {}}};
    ExperimentOptions opts;
    opts.jobs = 2;
    ExperimentRunner runner(opts);
    EXPECT_ANY_THROW(runner.runAll(cells));
}

TEST(Stats, JsonObjectRenderAndEscape)
{
    JsonObject o;
    o.str("name", "a\"b\\c\n").num("i", int64_t{-3}).num("d", 1.5);
    o.boolean("ok", true);
    EXPECT_EQ(o.render(),
              "{\"name\":\"a\\\"b\\\\c\\n\",\"i\":-3,\"d\":1.5,"
              "\"ok\":true}");
}

TEST(Stats, SinkWritesOneRecordPerPassAndCell)
{
    std::ostringstream out;
    StatsSink sink(out);

    ExperimentOptions opts;
    opts.jobs = 1;
    opts.stats = &sink;
    ExperimentRunner runner(opts);
    PipelineOptions po;
    po.scheduler = Scheduler::Gremio;
    runner.runAll({{makeAdpcmDec(), po}});

    // 13 pass records + 2 sim-engine records (st, mt) + 1 cell record.
    EXPECT_EQ(sink.recordsWritten(), kStandardPasses.size() + 3);
    std::istringstream in(out.str());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"cell\":\"adpcmdec/GREMIO\""),
                  std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, sink.recordsWritten());
    EXPECT_NE(out.str().find("\"pass\":\"build-ir\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"type\":\"cell\""), std::string::npos);
    EXPECT_NE(out.str().find("\"type\":\"sim\""), std::string::npos);
    EXPECT_NE(out.str().find("\"which\":\"st\""), std::string::npos);
    EXPECT_NE(out.str().find("\"which\":\"mt\""), std::string::npos);
    EXPECT_NE(out.str().find("\"engine\":\"fast\""), std::string::npos);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&]() { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
    // The pool is reusable after wait().
    pool.submit([&]() { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 101);
}

} // namespace
} // namespace gmt
