#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

TEST(Scc, SingleCycle)
{
    Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    auto sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 1);
    EXPECT_EQ(sccs.members[0].size(), 3u);
}

TEST(Scc, Chain)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    auto sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 4);
    // Component ids must be in topological order along the chain.
    EXPECT_LT(sccs.component[0], sccs.component[1]);
    EXPECT_LT(sccs.component[1], sccs.component[2]);
    EXPECT_LT(sccs.component[2], sccs.component[3]);
}

TEST(Scc, TwoCyclesBridged)
{
    // 0 <-> 1 -> 2 <-> 3
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 2);
    auto sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 2);
    EXPECT_EQ(sccs.component[0], sccs.component[1]);
    EXPECT_EQ(sccs.component[2], sccs.component[3]);
    EXPECT_LT(sccs.component[0], sccs.component[2]);
}

TEST(Scc, CondensationIsAcyclic)
{
    Digraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 4);
    auto sccs = computeSccs(g);
    auto dag = condense(g, sccs);
    EXPECT_EQ(dag.numNodes(), 3);
    EXPECT_TRUE(dag.isAcyclic());
}

// Brute-force mutual reachability for the property test.
std::vector<int>
bruteSccIds(const Digraph &g)
{
    int n = g.numNodes();
    std::vector<std::vector<bool>> reach(n);
    for (int u = 0; u < n; ++u)
        reach[u] = g.reachableFrom(u);
    std::vector<int> id(n, -1);
    int next = 0;
    for (int u = 0; u < n; ++u) {
        if (id[u] != -1)
            continue;
        id[u] = next;
        for (int v = u + 1; v < n; ++v) {
            if (reach[u][v] && reach[v][u])
                id[v] = next;
        }
        ++next;
    }
    return id;
}

TEST(SccProperty, MatchesBruteForceOnRandomGraphs)
{
    Rng rng(1234);
    for (int trial = 0; trial < 60; ++trial) {
        int n = 1 + static_cast<int>(rng.nextBelow(14));
        Digraph g(n);
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.nextBool(0.18))
                    g.addEdge(u, v);
            }
        }
        auto sccs = computeSccs(g);
        auto brute = bruteSccIds(g);
        // Same partition: nodes share a component iff brute agrees.
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                ASSERT_EQ(sccs.component[u] == sccs.component[v],
                          brute[u] == brute[v])
                    << "trial " << trial << " nodes " << u << "," << v;
            }
        }
        // Component numbering must topologically order the condensation.
        for (int u = 0; u < n; ++u) {
            for (NodeId v : g.succs(u)) {
                ASSERT_LE(sccs.component[u], sccs.component[v]);
            }
        }
    }
}

} // namespace
} // namespace gmt
