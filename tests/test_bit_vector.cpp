#include "support/bit_vector.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

TEST(BitVector, StartsEmpty)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_TRUE(bv.empty());
    EXPECT_EQ(bv.count(), 0u);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetResetTest)
{
    BitVector bv(130);
    bv.set(0);
    bv.set(63);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 4u);
    bv.reset(64);
    EXPECT_FALSE(bv.test(64));
    EXPECT_EQ(bv.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector bv(70);
    bv.setAll();
    EXPECT_EQ(bv.count(), 70u);
    bv.clearAll();
    EXPECT_TRUE(bv.empty());
}

TEST(BitVector, UnionReportsChange)
{
    BitVector a(64), b(64);
    b.set(10);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // already contained
    EXPECT_TRUE(a.test(10));
}

TEST(BitVector, IntersectReportsChange)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    EXPECT_TRUE(a.intersectWith(b));
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
    EXPECT_FALSE(a.intersectWith(b));
}

TEST(BitVector, SubtractRemovesBits)
{
    BitVector a(64), b(64);
    a.set(3);
    a.set(4);
    b.set(4);
    EXPECT_TRUE(a.subtract(b));
    EXPECT_TRUE(a.test(3));
    EXPECT_FALSE(a.test(4));
    EXPECT_FALSE(a.subtract(b));
}

TEST(BitVector, ForEachVisitsAscending)
{
    BitVector bv(200);
    std::set<size_t> expect{0, 5, 63, 64, 65, 128, 199};
    for (size_t i : expect)
        bv.set(i);
    std::vector<size_t> seen;
    bv.forEach([&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, std::vector<size_t>(expect.begin(), expect.end()));
}

TEST(BitVector, EqualityComparesContent)
{
    BitVector a(64), b(64);
    a.set(7);
    EXPECT_NE(a, b);
    b.set(7);
    EXPECT_EQ(a, b);
}

// Property test: BitVector set algebra agrees with std::set on random
// operation sequences.
TEST(BitVectorProperty, MatchesReferenceSet)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        size_t size = 1 + rng.nextBelow(300);
        BitVector bv(size);
        std::set<size_t> ref;
        for (int op = 0; op < 200; ++op) {
            size_t i = rng.nextBelow(size);
            switch (rng.nextBelow(3)) {
              case 0:
                bv.set(i);
                ref.insert(i);
                break;
              case 1:
                bv.reset(i);
                ref.erase(i);
                break;
              case 2:
                ASSERT_EQ(bv.test(i), ref.count(i) > 0);
                break;
            }
        }
        ASSERT_EQ(bv.count(), ref.size());
    }
}

TEST(BitVectorProperty, BinaryOpsMatchReference)
{
    Rng rng(43);
    for (int trial = 0; trial < 50; ++trial) {
        size_t size = 1 + rng.nextBelow(150);
        BitVector a(size), b(size);
        std::set<size_t> ra, rb;
        for (size_t i = 0; i < size; ++i) {
            if (rng.nextBool(0.4)) {
                a.set(i);
                ra.insert(i);
            }
            if (rng.nextBool(0.4)) {
                b.set(i);
                rb.insert(i);
            }
        }
        BitVector u = a, x = a, d = a;
        u.unionWith(b);
        x.intersectWith(b);
        d.subtract(b);
        for (size_t i = 0; i < size; ++i) {
            ASSERT_EQ(u.test(i), ra.count(i) || rb.count(i));
            ASSERT_EQ(x.test(i), ra.count(i) && rb.count(i));
            ASSERT_EQ(d.test(i), ra.count(i) && !rb.count(i));
        }
    }
}

} // namespace
} // namespace gmt
