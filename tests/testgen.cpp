#include "testgen.hpp"

#include <vector>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace gmt
{

namespace
{

/** Recursive structured generator. */
class Generator
{
  public:
    Generator(Rng &rng, const TestGenOptions &opts)
        : rng_(rng), opts_(opts), builder_("randprog")
    {
    }

    GeneratedProgram
    run()
    {
        // Pool registers; the first two are params.
        pool_.push_back(builder_.param());
        pool_.push_back(builder_.param());
        BlockId entry = builder_.newBlock("entry");
        builder_.setBlock(entry);
        for (int i = 2; i < opts_.pool_regs; ++i) {
            pool_.push_back(
                builder_.constI(rng_.nextRange(-10, 10)));
        }
        emitSequence(opts_.max_depth);
        builder_.ret(pool_);

        GeneratedProgram prog{builder_.finish(), 0, opts_.array_cells};
        verifyOrDie(prog.func);
        return prog;
    }

  private:
    Reg
    randomPool()
    {
        return pool_[rng_.nextBelow(pool_.size())];
    }

    /** addr = |reg| % cells  (always in bounds). */
    Reg
    emitAddress()
    {
        Reg v = builder_.abs(randomPool());
        Reg cells = builder_.constI(opts_.array_cells);
        return builder_.rem(v, cells);
    }

    AliasClass
    randomAlias()
    {
        // 0 is kAliasAny; 1..N are distinct classes.
        return static_cast<AliasClass>(
            rng_.nextBelow(opts_.num_alias_classes + 1));
    }

    void
    emitSimpleStmt()
    {
        if (rng_.nextDouble() < opts_.mem_prob) {
            if (rng_.nextBool()) {
                Reg addr = emitAddress();
                builder_.loadInto(randomPool(), addr, 0, randomAlias());
            } else {
                Reg addr = emitAddress();
                builder_.store(addr, 0, randomPool(), randomAlias());
            }
            return;
        }
        static const Opcode kOps[] = {Opcode::Add, Opcode::Sub,
                                      Opcode::Mul, Opcode::And,
                                      Opcode::Or,  Opcode::Xor,
                                      Opcode::Min, Opcode::Max,
                                      Opcode::CmpLt};
        Opcode op = kOps[rng_.nextBelow(std::size(kOps))];
        builder_.binopInto(op, randomPool(), randomPool(), randomPool());
    }

    void
    emitSequence(int depth)
    {
        int n = 1 + static_cast<int>(rng_.nextBelow(opts_.max_stmts));
        for (int i = 0; i < n; ++i) {
            double roll = rng_.nextDouble();
            if (depth > 0 && roll < 0.2) {
                emitIf(depth - 1);
            } else if (depth > 0 && roll < 0.35) {
                emitWhile(depth - 1);
            } else {
                emitSimpleStmt();
            }
        }
    }

    void
    emitIf(int depth)
    {
        Reg cond = builder_.cmpLt(randomPool(), randomPool());
        BlockId then_b = builder_.newBlock("then");
        BlockId else_b = builder_.newBlock("else");
        BlockId join_b = builder_.newBlock("join");
        builder_.br(cond, then_b, else_b);
        builder_.setBlock(then_b);
        emitSequence(depth);
        builder_.jmp(join_b);
        builder_.setBlock(else_b);
        if (rng_.nextBool())
            emitSequence(depth);
        builder_.jmp(join_b);
        builder_.setBlock(join_b);
    }

    void
    emitWhile(int depth)
    {
        // Data-dependent but bounded trip count: |pool| % max_trips.
        Reg v = builder_.abs(randomPool());
        Reg bound = builder_.constI(opts_.max_loop_trips);
        Reg counter = builder_.mov(builder_.rem(v, bound));

        BlockId head = builder_.newBlock("whead");
        BlockId body = builder_.newBlock("wbody");
        BlockId exit = builder_.newBlock("wexit");
        builder_.jmp(head);
        builder_.setBlock(head);
        Reg zero = builder_.constI(0);
        Reg cond = builder_.cmpGt(counter, zero);
        builder_.br(cond, body, exit);
        builder_.setBlock(body);
        emitSequence(depth);
        Reg one = builder_.constI(1);
        builder_.binopInto(Opcode::Sub, counter, counter, one);
        builder_.jmp(head);
        builder_.setBlock(exit);
    }

    Rng &rng_;
    TestGenOptions opts_;
    FunctionBuilder builder_;
    std::vector<Reg> pool_;
};

} // namespace

GeneratedProgram
generateProgram(Rng &rng, const TestGenOptions &opts)
{
    Generator gen(rng, opts);
    return gen.run();
}

} // namespace gmt
