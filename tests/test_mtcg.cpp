#include <gtest/gtest.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "equiv.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

/** Build PDG + CD + default plan + MTCG in one step. */
MtProgram
mtcgDefault(const Function &f, const ThreadPartition &partition,
            int queue_capacity = 32)
{
    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    CommPlan plan = defaultMtcgPlan(f, pdg, partition, cd);
    return runMtcg(f, pdg, partition, plan, cd,
                   {.queue_capacity = queue_capacity});
}

TEST(Mtcg, StraightLineSplit)
{
    // t1 computes y = x + 1, t0 returns y * y.
    FunctionBuilder b("sl");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg y = b.addImm(x, 1);
    Reg z = b.mul(y, y);
    b.ret({z});
    Function f = b.finish();
    verifyOrDie(f);

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    // const + add to thread 1; mul + ret stay on thread 0.
    p.assign[f.block(bb).instrs()[0]] = 1;
    p.assign[f.block(bb).instrs()[1]] = 1;

    MtProgram prog = mtcgDefault(f, p);
    ASSERT_EQ(prog.threads.size(), 2u);
    auto out = checkEquivalence(f, prog, {6}, 0, nullptr,
                                SchedulePolicy::RoundRobin, 0);
    ASSERT_TRUE(out.ok) << out.detail;
    EXPECT_EQ(out.mt.stats[1].produces, 1u);
    EXPECT_EQ(out.mt.stats[0].consumes, 1u);
}

TEST(Mtcg, ConditionalDefDuplicatesBranch)
{
    // r defined under a branch in t0; used by t1 -> t1 must replicate
    // the branch (transitive control dependence).
    FunctionBuilder b("cond");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId then_b = b.newBlock("then");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg r = b.constI(10);
    b.br(c, then_b, join);
    b.setBlock(then_b);
    b.constInto(r, 20);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.addImm(r, 1);
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);
    verifyOrDie(f);

    // Everything in t0 except the final add (and its const) and ret.
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    for (InstrId i : f.block(join).instrs())
        p.assign[i] = 1;

    MtProgram prog = mtcgDefault(f, p);
    for (int64_t cond : {0, 1}) {
        auto out = checkEquivalence(f, prog, {cond}, 0, nullptr,
                                    SchedulePolicy::RoundRobin, 0);
        ASSERT_TRUE(out.ok) << out.detail << " cond=" << cond;
    }
}

TEST(Mtcg, LoopLiveOutCommunicatedEachIteration)
{
    // Figure 4 shape: loop 1 (thread 0) defines r1 every iteration;
    // loop 2 (thread 1) uses only the final value. Default MTCG
    // produces once per iteration of loop 1.
    FunctionBuilder b("fig4");
    Reg n = b.param();
    BlockId l1h = b.newBlock("B2"); // loop 1 body (paper's B2)
    BlockId l2p = b.newBlock("B3"); // loop 2 preheader
    BlockId l2h = b.newBlock("B4"); // loop 2 body
    BlockId done = b.newBlock("B5");

    b.setBlock(l2p); // build order: entry must be first block created?
    Function *pf = &b.func();
    (void)pf;
    // NOTE: first created block (l1h) is the entry; fill it first.
    b.setBlock(l1h);
    Reg i = b.func().newReg();
    // i starts at 0 implicitly (registers zero-initialized).
    Reg r1 = b.func().newReg();
    b.addInto(r1, i, i);        // B: r1 = f(i)
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c1 = b.cmpLt(i, n);
    b.br(c1, l1h, l2p);         // C

    b.setBlock(l2p);
    Reg j = b.constI(0);        // D
    b.jmp(l2h);

    b.setBlock(l2h);
    Reg acc = b.func().newReg();
    b.addInto(acc, acc, r1);    // E: uses r1
    b.addInto(j, j, one);
    Reg c2 = b.cmpLt(j, n);
    b.br(c2, l2h, done);        // F

    b.setBlock(done);
    b.ret({acc});               // G
    Function f = b.finish();
    splitCriticalEdges(f);
    verifyOrDie(f);

    // Thread 0: loop 1; thread 1: loop 2 and ret.
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    for (BlockId blk : {l2p, l2h, done}) {
        for (InstrId i2 : f.block(blk).instrs())
            p.assign[i2] = 1;
    }

    MtProgram prog = mtcgDefault(f, p);
    auto out = checkEquivalence(f, prog, {10}, 0, nullptr,
                                SchedulePolicy::RoundRobin, 0);
    ASSERT_TRUE(out.ok) << out.detail;
    // Default MTCG communicates r1 once per loop-1 iteration (the
    // motivation for COCO's min-cut placement).
    EXPECT_GE(out.mt.stats[0].produces, 10u);
    // Thread 1 replicates loop 1's branch to consume per iteration.
    EXPECT_GT(out.mt.stats[1].duplicated_branches, 0u);
}

TEST(Mtcg, CrossThreadMemoryDepSynchronized)
{
    // Thread 0 stores, thread 1 loads the same location.
    FunctionBuilder b("memdep");
    Reg a = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(41);
    b.store(a, 0, v, 1);
    Reg w = b.load(a, 0, 1);
    Reg out_r = b.addImm(w, 1);
    b.ret({out_r});
    Function f = b.finish();
    verifyOrDie(f);

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    // load, const-1, add, ret in thread 1.
    const auto &ins = f.block(bb).instrs();
    for (size_t k = 2; k < ins.size(); ++k)
        p.assign[ins[k]] = 1;

    MtProgram prog = mtcgDefault(f, p);
    // Many random schedules: without the sync the load could race
    // ahead of the store.
    for (uint64_t seed = 0; seed < 30; ++seed) {
        auto out = checkEquivalence(f, prog, {0}, 4, nullptr,
                                    SchedulePolicy::Random, seed);
        ASSERT_TRUE(out.ok) << out.detail << " seed=" << seed;
        ASSERT_GE(out.mt.stats[0].produce_syncs, 1u);
    }
}

TEST(Mtcg, SingleThreadPartitionIsIdentityBehaviour)
{
    Rng rng(71);
    for (int trial = 0; trial < 10; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        verifyOrDie(f);
        auto p = singleThreadPartition(f);
        MtProgram prog = mtcgDefault(f, p);
        EXPECT_EQ(prog.num_queues, 0);
        auto out = checkEquivalence(f, prog, {trial, -trial},
                                    gen.array_cells, nullptr,
                                    SchedulePolicy::RoundRobin, 0);
        ASSERT_TRUE(out.ok) << out.detail;
    }
}

// The core MTCG property: for random programs, random partitions, and
// random schedules, MT execution is observationally equivalent to ST.
class MtcgRandomPartition
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MtcgRandomPartition, EquivalentToSingleThreaded)
{
    auto [num_threads, queue_capacity] = GetParam();
    Rng rng(9000 + num_threads * 13 + queue_capacity);
    for (int trial = 0; trial < 25; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        verifyOrDie(f);

        ThreadPartition p;
        p.num_threads = num_threads;
        p.assign.resize(f.numInstrs());
        for (auto &a : p.assign)
            a = static_cast<int>(rng.nextBelow(num_threads));

        MtProgram prog = mtcgDefault(f, p, queue_capacity);
        for (uint64_t seed = 0; seed < 3; ++seed) {
            auto args = std::vector<int64_t>{
                rng.nextRange(-20, 20), rng.nextRange(-20, 20)};
            auto out = checkEquivalence(
                f, prog, args, gen.array_cells, nullptr,
                seed == 0 ? SchedulePolicy::RoundRobin
                          : SchedulePolicy::Random,
                seed);
            ASSERT_TRUE(out.ok)
                << out.detail << " trial=" << trial << " seed=" << seed
                << "\n" << functionToString(f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndQueues, MtcgRandomPartition,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 32),
                      std::make_tuple(3, 1), std::make_tuple(3, 32),
                      std::make_tuple(4, 8)),
    [](const auto &info) {
        return "t" + std::to_string(std::get<0>(info.param)) + "_q" +
               std::to_string(std::get<1>(info.param));
    });

// Partitioner-driven end-to-end: DSWP and GREMIO partitions must also
// produce equivalent code.
TEST(MtcgEndToEnd, DswpAndGremioPartitions)
{
    Rng rng(123321);
    for (int trial = 0; trial < 15; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        verifyOrDie(f);
        Pdg pdg = buildPdg(f);

        MemoryImage mem;
        mem.alloc(gen.array_cells);
        auto train = interpret(f, {5, 9}, mem);
        auto profile = EdgeProfile::fromRun(f, train.profile);

        for (bool use_dswp : {true, false}) {
            ThreadPartition p =
                use_dswp
                    ? dswpPartition(pdg, profile, {.num_threads = 2})
                    : gremioPartition(pdg, profile, {.num_threads = 2});
            MtProgram prog = mtcgDefault(f, p);
            auto out = checkEquivalence(f, prog, {5, 9},
                                        gen.array_cells, nullptr,
                                        SchedulePolicy::Random, trial);
            ASSERT_TRUE(out.ok) << out.detail << " trial=" << trial
                                << " dswp=" << use_dswp;
        }
    }
}

} // namespace
} // namespace gmt
