#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

TEST(Report, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Report, GeomeanSkipsNonPositiveValues)
{
    // A zero (e.g. a cell whose simulation was skipped) must not
    // collapse the whole geomean to 0 or NaN.
    EXPECT_NEAR(geomean({1.0, 4.0, 0.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({-3.0, 9.0, 1.0}), 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(Report, MedianAndStddev)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);

    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Report, RelativeComm)
{
    PipelineResult a, b;
    a.reg_comm = 50;
    b.reg_comm = 100;
    EXPECT_DOUBLE_EQ(relativeComm(a, b), 0.5);
    PipelineResult none;
    EXPECT_DOUBLE_EQ(relativeComm(a, none), 1.0);
}

TEST(Driver, SchedulerNames)
{
    EXPECT_STREQ(schedulerName(Scheduler::Dswp), "DSWP");
    EXPECT_STREQ(schedulerName(Scheduler::Gremio), "GREMIO");
}

TEST(Driver, ResultAccessors)
{
    PipelineResult r;
    r.computation = 10;
    r.duplicated_branches = 2;
    r.reg_comm = 6;
    r.mem_sync = 4;
    r.st_cycles = 200;
    r.mt_cycles = 100;
    EXPECT_EQ(r.communication(), 10u);
    EXPECT_EQ(r.total(), 22u);
    EXPECT_DOUBLE_EQ(r.speedup(), 2.0);
}

TEST(Driver, StaticProfilePipelineRuns)
{
    Workload w = makeMpeg2Enc();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Dswp;
    opts.use_coco = true;
    opts.static_profile = true;
    opts.simulate = false;
    auto r = runPipeline(w, opts); // oracle asserts equivalence
    EXPECT_GT(r.computation, 0u);
}

TEST(Driver, ArchitectedQueueBudgetRuns)
{
    Workload w = makeAdpcmDec();
    for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
        PipelineOptions opts;
        opts.scheduler = sched;
        opts.use_coco = false; // default MTCG has the most queues
        opts.max_queues = 8;
        opts.simulate = false;
        auto r = runPipeline(w, opts);
        EXPECT_GT(r.communication(), 0u);
    }
}

TEST(Driver, FourThreadsEndToEnd)
{
    // The paper's section 6 scaling claim: more threads still produce
    // correct code (the pipeline's oracle asserts it) with a larger
    // communication share.
    Workload w = makeKs();
    PipelineOptions two;
    two.scheduler = Scheduler::Gremio;
    two.num_threads = 2;
    two.machine.num_cores = 2;
    two.simulate = false;
    auto r2 = runPipeline(w, two);

    PipelineOptions four = two;
    four.num_threads = 4;
    four.machine.num_cores = 4;
    auto r4 = runPipeline(w, four);
    EXPECT_GE(r4.communication(), r2.communication());

    four.use_coco = true;
    auto r4c = runPipeline(w, four);
    EXPECT_LE(r4c.communication(), r4.communication());
}

TEST(Driver, CocoIterationsReported)
{
    Workload w = makeMesa();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Gremio;
    opts.use_coco = true;
    opts.simulate = false;
    auto r = runPipeline(w, opts);
    EXPECT_GE(r.coco_iterations, 1);
    EXPECT_LT(r.coco_iterations, 16);
}

TEST(Driver, SimulatedCyclesPopulated)
{
    Workload w = makeTwolf();
    PipelineOptions opts;
    opts.scheduler = Scheduler::Dswp;
    opts.use_coco = true;
    auto r = runPipeline(w, opts);
    EXPECT_GT(r.st_cycles, 0u);
    EXPECT_GT(r.mt_cycles, 0u);
    EXPECT_GT(r.speedup(), 0.1);
}

} // namespace
} // namespace gmt
