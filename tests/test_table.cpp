#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace gmt
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t("Demo");
    t.setHeader({"Benchmark", "Value"});
    t.addRow({"ks", "73.7"});
    t.addRow({"adpcmdec", "12.0"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("Benchmark"), std::string::npos);
    EXPECT_NE(out.find("ks"), std::string::npos);
    EXPECT_NE(out.find("73.7"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("x");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("x");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, FmtFixedPoint)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, PctSigned)
{
    EXPECT_EQ(Table::pct(-0.344, 1), "-34.4%");
    EXPECT_EQ(Table::pct(0.156, 1), "+15.6%");
}

TEST(Table, ColumnsAlign)
{
    Table t("t");
    t.setHeader({"name", "n"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "100"});
    std::ostringstream os;
    t.print(os);
    // Every rendered line between rules must have the same length.
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line); // title
    size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << line;
    }
}

} // namespace
} // namespace gmt
