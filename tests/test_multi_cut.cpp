#include "graph/multi_cut.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

TEST(MultiCut, SinglePairReducesToMinCut)
{
    FlowNetwork net(3);
    net.addArc(0, 1, 4);
    net.addArc(1, 2, 6);
    auto result = multiPairMinCut(net, {{0, 2}});
    EXPECT_TRUE(result.finite);
    EXPECT_EQ(result.cost, 4);
    ASSERT_EQ(result.arcs.size(), 1u);
}

TEST(MultiCut, SharedArcCountedOnce)
{
    // Two pairs whose only connection is the same middle arc: cutting
    // it once disconnects both (the paper's motivation for sharing
    // synchronization instructions).
    FlowNetwork net(6);
    net.addArc(0, 2, kInfCapacity); // pair A source side
    net.addArc(1, 2, kInfCapacity); // pair B source side
    int shared = net.addArc(2, 3, 5);
    net.addArc(3, 4, kInfCapacity); // pair A sink side
    net.addArc(3, 5, kInfCapacity); // pair B sink side
    auto result = multiPairMinCut(net, {{0, 4}, {1, 5}});
    EXPECT_TRUE(result.finite);
    EXPECT_EQ(result.cost, 5);
    ASSERT_EQ(result.arcs.size(), 1u);
    EXPECT_EQ(result.arcs[0], shared);
}

TEST(MultiCut, DisjointPairsCutSeparately)
{
    FlowNetwork net(4);
    net.addArc(0, 1, 3);
    net.addArc(2, 3, 4);
    auto result = multiPairMinCut(net, {{0, 1}, {2, 3}});
    EXPECT_TRUE(result.finite);
    EXPECT_EQ(result.cost, 7);
    EXPECT_EQ(result.arcs.size(), 2u);
}

TEST(MultiCut, HeuristicNeverWorseThanSuperPairHere)
{
    // Cross topology where the super-pair formulation over-constrains:
    // pairs (0 -> 3) and (1 -> 4), but 0 also reaches 4 cheaply. The
    // per-pair heuristic only needs to cut each pair's own paths.
    auto build = [] {
        FlowNetwork net(5);
        net.addArc(0, 2, 2);
        net.addArc(1, 2, 2);
        net.addArc(2, 3, 3);
        net.addArc(2, 4, 3);
        net.addArc(0, 4, 1); // cross path: only matters to super-pair
        return net;
    };
    FlowNetwork a = build();
    auto heur = multiPairMinCut(a, {{0, 3}, {1, 4}});
    FlowNetwork b = build();
    auto super = superPairMinCut(b, {{0, 3}, {1, 4}});
    EXPECT_TRUE(heur.finite);
    EXPECT_TRUE(super.finite);
    EXPECT_LE(heur.cost, super.cost);
}

TEST(MultiCut, EmptyPairsNoCut)
{
    FlowNetwork net(2);
    net.addArc(0, 1, 1);
    auto result = multiPairMinCut(net, {});
    EXPECT_TRUE(result.finite);
    EXPECT_EQ(result.cost, 0);
    EXPECT_TRUE(result.arcs.empty());
}

// Property: after the heuristic runs, every pair is disconnected in
// the pruned network.
TEST(MultiCutProperty, CutsDisconnectAllPairs)
{
    Rng rng(555);
    for (int trial = 0; trial < 40; ++trial) {
        int n = 4 + static_cast<int>(rng.nextBelow(12));
        struct A
        {
            int u, v;
            Capacity c;
        };
        std::vector<A> arcs;
        for (int e = 0; e < 3 * n; ++e) {
            int u = static_cast<int>(rng.nextBelow(n));
            int v = static_cast<int>(rng.nextBelow(n));
            if (u != v)
                arcs.push_back({u, v, 1 + (Capacity)rng.nextBelow(9)});
        }
        std::vector<std::pair<int, int>> pairs;
        for (int p = 0; p < 3; ++p) {
            int s = static_cast<int>(rng.nextBelow(n));
            int t = static_cast<int>(rng.nextBelow(n));
            if (s != t)
                pairs.push_back({s, t});
        }
        FlowNetwork net(n);
        for (auto &a : arcs)
            net.addArc(a.u, a.v, a.c);
        auto result = multiPairMinCut(net, pairs);
        ASSERT_TRUE(result.finite);

        // Rebuild without the cut arcs; each pair must have 0 flow.
        for (auto [s, t] : pairs) {
            FlowNetwork pruned(n);
            for (size_t i = 0; i < arcs.size(); ++i) {
                bool cut = std::find(result.arcs.begin(), result.arcs.end(),
                                     static_cast<int>(i)) !=
                           result.arcs.end();
                if (!cut)
                    pruned.addArc(arcs[i].u, arcs[i].v, arcs[i].c);
            }
            MaxFlow mf(pruned);
            ASSERT_EQ(mf.solve(s, t), 0)
                << "pair (" << s << "," << t << ") still connected";
        }
    }
}

} // namespace
} // namespace gmt
