/**
 * @file
 * Decision-provenance invariants (obs/provenance.hpp, the
 * obs-provenance pass, and obs/explain.hpp):
 *
 *  - Determinism: the canonical provenance JSON of every fig7 cell is
 *    byte-identical across runner job counts, COCO solver job counts,
 *    cache cold/warm, a warm cache rerun, and warm/cold max-flow.
 *  - Coverage: every instruction, plan placement, and allocated queue
 *    resolves to a provenance decision, and the recorded assignments
 *    equal the pipeline's own artifacts.
 *  - Conservation: the costliest-decisions join covers 100% of the
 *    attributed stall cycles and resolves every StallReport entry to
 *    at least one provenance record.
 *  - Self-diff: diffSchedules of a cell against itself is zero().
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.hpp"
#include "driver/pass_manager.hpp"
#include "obs/explain.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

/** The fig7 matrix over a runtime-bounded workload subset. */
std::vector<ExperimentCell>
fig7Cells(const std::vector<std::string> &names, int max_queues = 0)
{
    std::vector<Workload> all = allWorkloads();
    std::vector<ExperimentCell> cells;
    for (const std::string &name : names) {
        const Workload *w = nullptr;
        for (const Workload &cand : all)
            if (cand.name == name)
                w = &cand;
        EXPECT_NE(w, nullptr) << name;
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                po.max_queues = max_queues;
                po.record_provenance = true;
                cells.push_back({*w, po});
            }
        }
    }
    return cells;
}

/** Canonical JSON per cell under one runner configuration. */
std::vector<std::string>
canonicalJsons(std::vector<ExperimentCell> cells, int jobs,
               bool use_cache, int coco_jobs, bool warm_start)
{
    for (ExperimentCell &cell : cells) {
        cell.opts.coco_jobs = coco_jobs;
        cell.opts.coco.warm_start = warm_start;
    }
    ExperimentOptions eo;
    eo.jobs = jobs;
    eo.use_cache = use_cache;
    ExperimentRunner runner(eo);
    runner.runAll(cells);
    std::vector<std::string> out;
    for (const auto &prov : runner.provenances()) {
        EXPECT_NE(prov, nullptr);
        out.push_back(prov ? prov->canonical_json : "");
    }
    return out;
}

TEST(ProvenanceDeterminism, ByteIdenticalAcrossExecutionAxes)
{
    auto cells = fig7Cells({"adpcmdec", "ks"});
    auto base = canonicalJsons(cells, 1, true, 1, true);
    ASSERT_EQ(base.size(), cells.size());
    for (const std::string &json : base) {
        EXPECT_FALSE(json.empty());
        EXPECT_EQ(json.rfind("{\"schema\":1,\"type\":\"provenance\"",
                             0),
                  0u);
    }

    struct Variant
    {
        const char *name;
        int jobs;
        bool cache;
        int coco_jobs;
        bool warm;
    };
    const Variant variants[] = {
        {"jobs=4", 4, true, 1, true},
        {"coco_jobs=4", 1, true, 4, true},
        {"cache=off", 1, false, 1, true},
        {"warm_maxflow=off", 1, true, 1, false},
        {"jobs=4 coco_jobs=4 cache=off", 4, false, 4, true},
    };
    for (const Variant &v : variants) {
        auto got =
            canonicalJsons(cells, v.jobs, v.cache, v.coco_jobs, v.warm);
        ASSERT_EQ(got.size(), base.size()) << v.name;
        for (size_t i = 0; i < base.size(); ++i)
            EXPECT_EQ(got[i], base[i])
                << v.name << " diverged for cell " << i;
    }
}

TEST(ProvenanceDeterminism, WarmCacheRerunIsIdentical)
{
    auto cells = fig7Cells({"adpcmdec"});
    ExperimentOptions eo;
    eo.jobs = 1;
    ExperimentRunner runner(eo);
    runner.runAll(cells);
    std::vector<std::string> first;
    for (const auto &prov : runner.provenances())
        first.push_back(prov->canonical_json);
    const uint64_t misses_cold = runner.summary().cache.misses;
    // Second batch over the same runner: everything is a cache hit,
    // so the provenance artifacts come straight from the cache.
    runner.runAll(cells);
    ASSERT_EQ(runner.summary().cache.misses, misses_cold);
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(runner.provenances()[i]->canonical_json, first[i]);
}

TEST(ProvenanceDeterminism, SerializerIsAFixpointOfTheRecord)
{
    auto cells = fig7Cells({"ks"});
    ExperimentRunner runner;
    runner.runAll(cells);
    for (const auto &prov : runner.provenances()) {
        ASSERT_NE(prov, nullptr);
        EXPECT_EQ(provenanceJson(prov->prov), prov->canonical_json);
    }
}

/** ir + obs + prov of one directly-run cell. */
struct CellRun
{
    std::shared_ptr<const IrArtifact> ir;
    std::shared_ptr<const PartitionArtifact> partition;
    std::shared_ptr<const PlanArtifact> plan;
    std::shared_ptr<const ProgramArtifact> prog;
    std::shared_ptr<const ObsProfileArtifact> obs;
    std::shared_ptr<const ProvenanceArtifact> prov;
};

CellRun
runCell(const Workload &w, PipelineOptions po, ArtifactCache *cache)
{
    po.record_provenance = true;
    po.profile_stalls = true;
    PipelineContext ctx(w, po);
    ctx.cache = cache;
    PassManager::standardPipeline().run(ctx);
    return {ctx.ir,  ctx.partition, ctx.plan,
            ctx.prog, ctx.obs,      ctx.prov};
}

TEST(ProvenanceCoverage, EveryDecisionResolvesAndMatchesArtifacts)
{
    std::vector<Workload> all = allWorkloads();
    ArtifactCache cache;
    for (const Workload &w : all) {
        if (w.name != "adpcmdec" && w.name != "ks" &&
            w.name != "mcf")
            continue;
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                for (int max_queues : {0, 4}) {
                    PipelineOptions po;
                    po.scheduler = sched;
                    po.use_coco = coco;
                    po.max_queues = max_queues;
                    CellRun r = runCell(w, po, &cache);
                    const Provenance &p = r.prov->prov;

                    // Partition record covers every instruction and
                    // equals the pipeline's assignment.
                    ASSERT_EQ(p.partition.thread_of,
                              r.partition->partition.assign);
                    ASSERT_EQ(p.partition.unit_of.size(),
                              (size_t)r.ir->func.numInstrs());
                    for (InstrId i = 0; i < r.ir->func.numInstrs();
                         ++i) {
                        const UnitDecision *u = p.unitDecisionFor(i);
                        ASSERT_NE(u, nullptr) << p.cell << " instr "
                                              << i;
                        EXPECT_EQ(u->thread,
                                  p.partition.thread_of[i]);
                    }

                    // Placement record covers every plan placement
                    // with consistent endpoints.
                    const CommPlan &plan = r.plan->plan;
                    ASSERT_EQ(p.placement.placements.size(),
                              plan.placements.size());
                    for (size_t i = 0; i < plan.placements.size();
                         ++i) {
                        const PlacementDecision *d =
                            p.placementDecisionFor((int)i);
                        ASSERT_NE(d, nullptr)
                            << p.cell << " placement " << i;
                        EXPECT_EQ(d->src_thread,
                                  plan.placements[i].src_thread);
                        EXPECT_EQ(d->dst_thread,
                                  plan.placements[i].dst_thread);
                        EXPECT_FALSE(d->rule.empty());
                        // The breakdown names exactly the plan's
                        // chosen points.
                        ASSERT_EQ(d->points.size(),
                                  plan.placements[i].points.size());
                    }

                    // Queue record covers every allocated queue, and
                    // the multiplex lists invert queue_of exactly.
                    ASSERT_EQ(p.queues.num_queues,
                              r.prog->prog.num_queues);
                    std::vector<int> queue_of(
                        plan.placements.size(), -1);
                    for (const QueueDecision &q : p.queues.queues)
                        for (int pi : q.placements)
                            queue_of[pi] = q.queue;
                    EXPECT_EQ(queue_of, r.prog->queue_of) << p.cell;
                    for (int q = 0; q < p.queues.num_queues; ++q)
                        ASSERT_NE(p.queueDecisionFor(q), nullptr)
                            << p.cell << " queue " << q;
                }
            }
        }
    }
}

TEST(ProvenanceExplain, CostliestReportIsConservedAndResolved)
{
    std::vector<Workload> all = allWorkloads();
    ArtifactCache cache;
    for (const Workload &w : all) {
        if (w.name != "adpcmdec" && w.name != "ks")
            continue;
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                CellRun r = runCell(w, po, &cache);
                CostliestReport rep = buildCostliestReport(
                    r.prov->prov, r.obs->report, r.ir->func);
                // 100% of the attributed stall cycles are covered by
                // the block-side entries (the queue side is the same
                // cycles viewed from the queues).
                EXPECT_EQ(rep.block_cycles, rep.total_stall_cycles)
                    << r.prov->prov.cell;
                EXPECT_EQ(rep.total_stall_cycles,
                          r.obs->report.totalStallCycles());
                // Every StallReport entry resolved to >= 1 record.
                EXPECT_EQ(rep.unresolved, 0) << r.prov->prov.cell;
                for (const CostEntry &e : rep.entries)
                    EXPECT_GE(e.records, 1)
                        << r.prov->prov.cell << " " << e.kind;
            }
        }
    }
}

TEST(ProvenanceExplain, SelfDiffIsZero)
{
    std::vector<Workload> all = allWorkloads();
    ArtifactCache cache;
    const Workload *w = nullptr;
    for (const Workload &cand : all)
        if (cand.name == "adpcmdec")
            w = &cand;
    ASSERT_NE(w, nullptr);
    PipelineOptions po;
    po.scheduler = Scheduler::Gremio;
    po.use_coco = true;
    CellRun a = runCell(*w, po, &cache);
    CellRun b = runCell(*w, po, &cache);
    ScheduleDiff d = diffSchedules(a.prov->prov, a.obs->report,
                                   b.prov->prov, b.obs->report);
    EXPECT_TRUE(d.zero());
    EXPECT_TRUE(d.moved.empty());
    EXPECT_TRUE(d.queue_deltas.empty());
    EXPECT_TRUE(d.block_deltas.empty());

    // And a run against a genuinely different schedule is nonzero.
    PipelineOptions po2 = po;
    po2.use_coco = false;
    CellRun c = runCell(*w, po2, &cache);
    ScheduleDiff d2 = diffSchedules(a.prov->prov, a.obs->report,
                                    c.prov->prov, c.obs->report);
    EXPECT_FALSE(d2.zero());
}

TEST(ProvenanceExplain, PointQueriesRenderEveryValidId)
{
    std::vector<Workload> all = allWorkloads();
    const Workload *w = nullptr;
    for (const Workload &cand : all)
        if (cand.name == "ks")
            w = &cand;
    ASSERT_NE(w, nullptr);
    PipelineOptions po;
    po.scheduler = Scheduler::Dswp;
    po.use_coco = true;
    CellRun r = runCell(*w, po, nullptr);
    const Provenance &p = r.prov->prov;
    for (InstrId i = 0; i < r.ir->func.numInstrs(); ++i) {
        std::ostringstream os;
        renderInstrExplanation(os, p, r.ir->func, i);
        EXPECT_NE(os.str().find("partitioner"), std::string::npos)
            << i;
        std::ostringstream js;
        writeInstrExplanationJson(js, p, r.ir->func, i);
        EXPECT_EQ(js.str().rfind("{\"schema\":1,", 0), 0u);
    }
    for (int q = 0; q < p.queues.num_queues; ++q) {
        std::ostringstream os;
        renderQueueExplanation(os, p, q);
        EXPECT_NE(os.str().find("rule"), std::string::npos) << q;
        std::ostringstream js;
        writeQueueExplanationJson(js, p, q);
        EXPECT_EQ(js.str().rfind("{\"schema\":1,", 0), 0u);
    }
}

TEST(ProvenanceRecord, GremioScoresNameTheChosenThread)
{
    std::vector<Workload> all = allWorkloads();
    const Workload *w = nullptr;
    for (const Workload &cand : all)
        if (cand.name == "adpcmdec")
            w = &cand;
    ASSERT_NE(w, nullptr);
    PipelineOptions po;
    po.scheduler = Scheduler::Gremio;
    po.use_coco = false;
    CellRun r = runCell(*w, po, nullptr);
    const PartitionProvenance &part = r.prov->prov.partition;
    EXPECT_EQ(part.algorithm, "GREMIO");
    for (const UnitDecision &u : part.units) {
        ASSERT_FALSE(u.candidates.empty());
        int chosen = 0;
        uint64_t best = UINT64_MAX;
        for (const ThreadCandidate &c : u.candidates) {
            if (c.chosen) {
                ++chosen;
                EXPECT_EQ(c.thread, u.thread);
            }
            best = std::min(best, c.score);
        }
        EXPECT_EQ(chosen, 1);
        // The chosen candidate carries the minimum score (ties break
        // toward lower busy, which never raises the score).
        for (const ThreadCandidate &c : u.candidates) {
            if (c.chosen) {
                EXPECT_EQ(c.score, best);
            }
        }
    }
}

} // namespace
} // namespace gmt
