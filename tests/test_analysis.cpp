#include <gtest/gtest.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loop_info.hpp"
#include "analysis/mem_dep.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

/** Diamond: entry -> (left|right) -> join -> exit(ret). */
Function
buildDiamond()
{
    FunctionBuilder b("diamond");
    Reg c = b.param();
    BlockId entry = b.newBlock("entry");
    BlockId left = b.newBlock("left");
    BlockId right = b.newBlock("right");
    BlockId join = b.newBlock("join");
    b.setBlock(entry);
    b.br(c, left, right);
    b.setBlock(left);
    Reg x = b.constI(1);
    b.jmp(join);
    b.setBlock(right);
    Reg y = b.constI(2);
    b.jmp(join);
    b.setBlock(join);
    Reg z = b.add(x, y); // note: whichever path ran defined only one
    b.ret({z});
    return b.finish();
}

TEST(Dominators, Diamond)
{
    Function f = buildDiamond();
    auto dom = DominatorTree::dominators(f);
    EXPECT_EQ(dom.root(), 0);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 0);
    EXPECT_EQ(dom.idom(3), 0); // join's idom skips the branches
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(3, 3));
}

TEST(Dominators, PostDiamond)
{
    Function f = buildDiamond();
    auto pdom = DominatorTree::postDominators(f);
    EXPECT_EQ(pdom.root(), 3);
    EXPECT_EQ(pdom.idom(1), 3);
    EXPECT_EQ(pdom.idom(2), 3);
    EXPECT_EQ(pdom.idom(0), 3);
    EXPECT_TRUE(pdom.dominates(3, 0));
    EXPECT_FALSE(pdom.dominates(1, 0));
}

// Brute-force dominance: a dominates b iff removing a disconnects b
// from the root (walking succ or pred edges).
bool
bruteDominates(const Function &f, BlockId a, BlockId b, bool reverse)
{
    if (a == b)
        return true;
    BlockId root = reverse ? f.exitBlock() : f.entry();
    if (b == root)
        return false;
    std::vector<bool> seen(f.numBlocks(), false);
    std::vector<BlockId> stack{root};
    if (root == a)
        return true;
    seen[root] = true;
    while (!stack.empty()) {
        BlockId u = stack.back();
        stack.pop_back();
        const auto &next =
            reverse ? f.block(u).preds() : f.block(u).succs();
        for (BlockId v : next) {
            if (v == a || seen[v])
                continue;
            if (v == b)
                return false;
            seen[v] = true;
            stack.push_back(v);
        }
    }
    return true;
}

TEST(DominatorsProperty, MatchBruteForceOnRandomPrograms)
{
    Rng rng(2024);
    for (int trial = 0; trial < 25; ++trial) {
        auto prog = generateProgram(rng);
        const Function &f = prog.func;
        auto dom = DominatorTree::dominators(f);
        auto pdom = DominatorTree::postDominators(f);
        for (BlockId a = 0; a < f.numBlocks(); ++a) {
            for (BlockId b = 0; b < f.numBlocks(); ++b) {
                ASSERT_EQ(dom.dominates(a, b),
                          bruteDominates(f, a, b, false))
                    << "dom trial " << trial << " a=" << a << " b=" << b;
                ASSERT_EQ(pdom.dominates(a, b),
                          bruteDominates(f, a, b, true))
                    << "pdom trial " << trial << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(ControlDep, DiamondArmsDependOnBranch)
{
    Function f = buildDiamond();
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    EXPECT_TRUE(cd.isControlDependent(1, 0));
    EXPECT_TRUE(cd.isControlDependent(2, 0));
    EXPECT_FALSE(cd.isControlDependent(3, 0)); // join always runs
    EXPECT_FALSE(cd.isControlDependent(0, 0));
    EXPECT_EQ(cd.controlledBy(0).size(), 2u);
}

TEST(ControlDep, LoopBodyDependsOnLatch)
{
    // head -> body -> latch(br) -> head | exit : body depends on latch.
    FunctionBuilder b("loop");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg cond = b.cmpLt(i, n);
    b.br(cond, body, exit);
    b.setBlock(exit);
    b.ret({i});
    Function f = b.finish();
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    // body is control dependent on itself (its branch re-enters it).
    EXPECT_TRUE(cd.isControlDependent(1, 1));
    EXPECT_FALSE(cd.isControlDependent(2, 1));
}

// Definitional cross-check of control dependence: B is control
// dependent on A iff A has a successor S with B post-dominating S,
// and B does not (strictly) post-dominate A.
TEST(ControlDepProperty, MatchesDefinitionOnRandomPrograms)
{
    Rng rng(4048);
    for (int trial = 0; trial < 25; ++trial) {
        auto prog = generateProgram(rng);
        const Function &f = prog.func;
        auto pdom = DominatorTree::postDominators(f);
        ControlDependence cd(f, pdom);
        for (BlockId a = 0; a < f.numBlocks(); ++a) {
            if (f.block(a).succs().size() < 2)
                continue;
            for (BlockId b = 0; b < f.numBlocks(); ++b) {
                bool via_succ = false;
                for (BlockId s : f.block(a).succs())
                    via_succ |= pdom.dominates(b, s);
                bool expect =
                    via_succ && (a == b || !pdom.dominates(b, a));
                ASSERT_EQ(cd.isControlDependent(b, a), expect)
                    << "trial " << trial << " b=" << b << " a=" << a;
            }
        }
    }
}

TEST(Liveness, StraightLine)
{
    FunctionBuilder b("sl");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg y = b.addImm(x, 1); // uses x
    b.ret({y});
    Function f = b.finish();
    Liveness live(f);
    EXPECT_TRUE(live.liveIn(0).test(x));
    // x dies after its use; at the ret only y is live.
    ProgramPoint before_ret{0, static_cast<int>(f.block(0).size()) - 1};
    EXPECT_TRUE(live.isLiveAt(y, before_ret));
    EXPECT_FALSE(live.isLiveAt(x, before_ret));
}

TEST(Liveness, LoopCarriedValueStaysLive)
{
    FunctionBuilder b("loop");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg sum = b.constI(0);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    b.addInto(sum, sum, i);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({sum});
    Function f = b.finish();
    Liveness live(f);
    // sum is live around the back edge and out of the loop.
    EXPECT_TRUE(live.liveIn(1).test(sum));
    EXPECT_TRUE(live.liveOut(1).test(sum));
    EXPECT_TRUE(live.liveIn(2).test(sum));
    // n is live in the loop (used by the exit test) but not after.
    EXPECT_TRUE(live.liveIn(1).test(n));
    EXPECT_FALSE(live.liveIn(2).test(n));
}

// Fixpoint-consistency property: IN = USE u (OUT - DEF), OUT = union
// of successors' IN, on random programs.
TEST(LivenessProperty, DataflowEquationsHold)
{
    Rng rng(808);
    for (int trial = 0; trial < 25; ++trial) {
        auto prog = generateProgram(rng);
        const Function &f = prog.func;
        Liveness live(f);
        for (BlockId b = 0; b < f.numBlocks(); ++b) {
            BitVector out(f.numRegs());
            for (BlockId s : f.block(b).succs())
                out.unionWith(live.liveIn(s));
            ASSERT_EQ(out, live.liveOut(b)) << "OUT b=" << b;
            // liveAt(entry of b) must equal liveIn(b).
            ASSERT_EQ(live.liveAt({b, 0}), live.liveIn(b))
                << "IN b=" << b;
        }
    }
}

TEST(LoopInfo, SingleLoop)
{
    FunctionBuilder b("loop");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({i});
    Function f = b.finish();
    auto dom = DominatorTree::dominators(f);
    LoopInfo loops(f, dom);
    ASSERT_EQ(loops.numLoops(), 1);
    EXPECT_EQ(loops.loop(0).header, 1);
    EXPECT_EQ(loops.depthOf(1), 1);
    EXPECT_EQ(loops.depthOf(0), 0);
    EXPECT_EQ(loops.depthOf(2), 0);
}

TEST(LoopInfo, NestedLoopsDepth)
{
    // outer: o_head -> inner(i_head <-> i_head) -> o_latch -> o_head.
    FunctionBuilder b("nest");
    Reg n = b.param();
    BlockId ohead = b.newBlock("ohead");
    BlockId ihead = b.newBlock("ihead");
    BlockId olatch = b.newBlock("olatch");
    BlockId exit = b.newBlock("exit");
    b.setBlock(ohead);
    Reg i = b.constI(0);
    Reg j = b.constI(0);
    b.jmp(ihead);
    b.setBlock(ihead);
    Reg one = b.constI(1);
    b.addInto(j, j, one);
    Reg jc = b.cmpLt(j, n);
    b.br(jc, ihead, olatch);
    b.setBlock(olatch);
    b.addInto(i, i, one);
    Reg ic = b.cmpLt(i, n);
    b.br(ic, ihead, exit);
    b.setBlock(exit);
    b.ret({i, j});
    Function f = b.finish();
    auto dom = DominatorTree::dominators(f);
    LoopInfo loops(f, dom);
    ASSERT_EQ(loops.numLoops(), 1); // shared header collapses here
    EXPECT_GE(loops.depthOf(ihead), 1);
}

TEST(MemDep, MayAliasRules)
{
    EXPECT_TRUE(mayAlias(kAliasAny, 5));
    EXPECT_TRUE(mayAlias(5, kAliasAny));
    EXPECT_TRUE(mayAlias(3, 3));
    EXPECT_FALSE(mayAlias(3, 4));
}

TEST(MemDep, StraightLineFlowDep)
{
    FunctionBuilder b("m");
    Reg a = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(7);
    b.store(a, 0, v, 1);
    Reg w = b.load(a, 0, 1);
    b.ret({w});
    Function f = b.finish();
    auto deps = computeMemDeps(f);
    // store->load flow dep; load->store has no path (load after).
    bool found_flow = false;
    for (const auto &d : deps) {
        if (d.kind == MemDepKind::Flow)
            found_flow = true;
        // No dep may run backwards in a straight line.
        EXPECT_LT(f.positionOf(d.src), f.positionOf(d.dst));
    }
    EXPECT_TRUE(found_flow);
}

TEST(MemDep, DisjointClassesIndependent)
{
    FunctionBuilder b("m2");
    Reg a = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(7);
    b.store(a, 0, v, 1);
    Reg w = b.load(a, 1, 2); // different alias class
    b.ret({w});
    Function f = b.finish();
    auto deps = computeMemDeps(f);
    EXPECT_TRUE(deps.empty());
}

TEST(MemDep, LoopCarriedBidirectional)
{
    // Loop body with store then load of the same class: both
    // store->load (same iter) and load->store (next iter) exist.
    FunctionBuilder b("m3");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg v = b.load(i, 0, 3);
    b.store(i, 0, v, 3);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({});
    Function f = b.finish();
    auto deps = computeMemDeps(f);
    bool flow = false, anti = false;
    for (const auto &d : deps) {
        flow |= (d.kind == MemDepKind::Flow);
        anti |= (d.kind == MemDepKind::Anti);
    }
    EXPECT_TRUE(flow);
    EXPECT_TRUE(anti);
}

TEST(EdgeProfile, FromRunMatchesCounts)
{
    FunctionBuilder b("p");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({i});
    Function f = b.finish();
    MemoryImage mem;
    auto run = interpret(f, {5}, mem);
    auto prof = EdgeProfile::fromRun(f, run.profile);
    EXPECT_EQ(prof.blockWeight(1), 5u);
    EXPECT_EQ(prof.edgeWeight(1, 0), 4u);
    EXPECT_EQ(prof.edgeWeight(1, 1), 1u);
    EXPECT_EQ(prof.pointWeight({1, 0}), 5u);
}

TEST(EdgeProfile, StaticEstimateScalesWithDepth)
{
    FunctionBuilder b("p2");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({i});
    Function f = b.finish();
    auto dom = DominatorTree::dominators(f);
    LoopInfo loops(f, dom);
    auto prof = EdgeProfile::staticEstimate(f, loops);
    EXPECT_GT(prof.blockWeight(1), prof.blockWeight(0));
    EXPECT_GT(prof.blockWeight(1), prof.blockWeight(2));
}

} // namespace
} // namespace gmt
