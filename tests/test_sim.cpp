#include <gtest/gtest.h>

#include <sstream>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "sim/cmp_simulator.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

TEST(Cache, HitAfterFill)
{
    Cache c({1024, 2, 64, 1});
    EXPECT_FALSE(c.lookup(0));
    c.fill(0);
    EXPECT_TRUE(c.lookup(0));
    EXPECT_TRUE(c.lookup(63));  // same line
    EXPECT_FALSE(c.lookup(64)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    Cache c({256, 2, 64, 1});
    // Three lines mapping to the same set (stride = 2 lines).
    c.fill(0);
    c.fill(256);
    EXPECT_TRUE(c.lookup(0));   // refresh 0: 256 becomes LRU
    c.fill(512);                // evicts 256
    EXPECT_TRUE(c.lookup(0));
    EXPECT_FALSE(c.lookup(256));
    EXPECT_TRUE(c.lookup(512));
}

TEST(Cache, Invalidate)
{
    Cache c({1024, 2, 64, 1});
    c.fill(128);
    EXPECT_TRUE(c.lookup(128));
    c.invalidate(128);
    EXPECT_FALSE(c.lookup(128));
}

TEST(MemoryHierarchy, LatencyLadder)
{
    MachineConfig cfg;
    MemoryHierarchy h(cfg, 2);
    // Cold: full memory latency. Then L1 hit.
    EXPECT_EQ(h.loadLatency(0, 100), cfg.memory_latency);
    EXPECT_EQ(h.loadLatency(0, 100), cfg.l1d.hit_latency);
}

TEST(MemoryHierarchy, StoreInvalidatesOtherCore)
{
    MachineConfig cfg;
    MemoryHierarchy h(cfg, 2);
    h.loadLatency(0, 100);
    h.loadLatency(1, 100);
    EXPECT_EQ(h.loadLatency(1, 100), cfg.l1d.hit_latency);
    h.storeLatency(0, 100);
    // Core 1's copies died; it refetches from the shared L3.
    EXPECT_EQ(h.loadLatency(1, 100), cfg.l3.hit_latency);
}

TEST(SyncArrayTiming, PortsLimitPerCycle)
{
    MachineConfig cfg;
    cfg.sa_ports = 2;
    SyncArrayTiming sa(cfg);
    sa.beginCycle();
    EXPECT_TRUE(sa.portAvailable());
    sa.produce(0, 1);
    sa.produce(1, 2);
    EXPECT_FALSE(sa.portAvailable());
    sa.beginCycle();
    EXPECT_TRUE(sa.portAvailable());
}

TEST(SyncArrayTiming, CapacityGatesProduce)
{
    MachineConfig cfg;
    cfg.queue_capacity = 1;
    SyncArrayTiming sa(cfg);
    sa.beginCycle();
    EXPECT_TRUE(sa.canProduce(3));
    sa.produce(3, 9);
    EXPECT_FALSE(sa.canProduce(3));
    EXPECT_TRUE(sa.canConsume(3));
    EXPECT_EQ(sa.consume(3), 9);
    EXPECT_FALSE(sa.canConsume(3));
    EXPECT_TRUE(sa.allDrained());
}

TEST(MachineConfig, PrintsFigure6a)
{
    std::ostringstream os;
    MachineConfig::paperDefault().print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("L3 (shared)"), std::string::npos);
    EXPECT_NE(s.find("141"), std::string::npos);
    EXPECT_NE(s.find("write-invalidate"), std::string::npos);
}

Function
buildLoopSum()
{
    FunctionBuilder b("loop_sum");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId done = b.newBlock("done");
    b.setBlock(head);
    Reg i = b.constI(0);
    Reg sum = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    b.addInto(sum, sum, i);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg again = b.cmpLt(i, n);
    b.br(again, body, done);
    b.setBlock(done);
    b.ret({sum});
    return b.finish();
}

TEST(CmpSimulator, SingleThreadMatchesInterpreter)
{
    Function f = buildLoopSum();
    MemoryImage mem;
    auto sim = simulateSingleThreaded(f, {50}, mem,
                                      MachineConfig::paperDefault());
    MemoryImage mem2;
    auto ref = interpret(f, {50}, mem2);
    EXPECT_EQ(sim.live_outs, ref.live_outs);
    EXPECT_TRUE(sim.queues_drained);
    // Cycles bounded below by instrs / issue width.
    EXPECT_GE(sim.cycles, ref.dyn_instrs / 6);
}

TEST(CmpSimulator, DependentChainBoundByLatency)
{
    // A serial chain of n adds takes at least n cycles.
    FunctionBuilder b("chain");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg one = b.constI(1);
    Reg v = x;
    for (int i = 0; i < 64; ++i)
        v = b.add(v, one);
    b.ret({v});
    Function f = b.finish();
    MemoryImage mem;
    auto sim = simulateSingleThreaded(f, {0}, mem,
                                      MachineConfig::paperDefault());
    EXPECT_EQ(sim.live_outs[0], 64);
    EXPECT_GE(sim.cycles, 64u);
}

TEST(CmpSimulator, IndependentWorkIssuesWide)
{
    // 60 independent consts retire much faster than 1 per cycle.
    FunctionBuilder b("wide");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg last = kNoReg;
    for (int i = 0; i < 60; ++i)
        last = b.constI(i);
    b.ret({last});
    Function f = b.finish();
    MemoryImage mem;
    auto sim = simulateSingleThreaded(f, {}, mem,
                                      MachineConfig::paperDefault());
    EXPECT_LT(sim.cycles, 30u);
}

TEST(CmpSimulator, MemPortLimitsThroughput)
{
    // 40 independent stores: at most 4 per cycle.
    FunctionBuilder b("stores");
    Reg base = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(7);
    for (int i = 0; i < 40; ++i)
        b.store(base, i, v, 1);
    b.ret({});
    Function f = b.finish();
    MemoryImage mem;
    mem.alloc(64);
    auto sim = simulateSingleThreaded(f, {0}, mem,
                                      MachineConfig::paperDefault());
    EXPECT_GE(sim.cycles, 10u); // 40 stores / 4 ports
}

TEST(CmpSimulator, ProducerConsumerPipeline)
{
    // Thread 1 produces n values; thread 0 consumes and sums them.
    MtProgram prog;
    prog.num_queues = 1;
    prog.queue_capacity = 32;
    {
        FunctionBuilder b("consumer");
        Reg n = b.param();
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId done = b.newBlock("done");
        b.setBlock(head);
        Reg i = b.constI(0);
        Reg sum = b.constI(0);
        b.jmp(body);
        b.setBlock(body);
        Reg v = b.func().newReg();
        b.func().append(body, {.op = Opcode::Consume, .dst = v,
                               .queue = 0});
        b.addInto(sum, sum, v);
        Reg one = b.constI(1);
        b.addInto(i, i, one);
        Reg c = b.cmpLt(i, n);
        b.br(c, body, done);
        b.setBlock(done);
        b.ret({sum});
        prog.threads.push_back(b.finish());
    }
    {
        FunctionBuilder b("producer");
        Reg n = b.param();
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId done = b.newBlock("done");
        b.setBlock(head);
        Reg i = b.constI(0);
        b.jmp(body);
        b.setBlock(body);
        b.func().append(body, {.op = Opcode::Produce, .src1 = i,
                               .queue = 0});
        Reg one = b.constI(1);
        b.addInto(i, i, one);
        Reg c = b.cmpLt(i, n);
        b.br(c, body, done);
        b.setBlock(done);
        b.ret({});
        prog.threads.push_back(b.finish());
    }
    MemoryImage mem;
    CmpSimulator sim(MachineConfig::paperDefault());
    auto r = sim.run(prog, {100}, mem);
    ASSERT_EQ(r.live_outs.size(), 1u);
    EXPECT_EQ(r.live_outs[0], 99 * 100 / 2);
    EXPECT_TRUE(r.queues_drained);
    EXPECT_GT(r.core[0].comm_instrs, 0u);
}

TEST(CmpSimulator, QueueCapacityOneSerializes)
{
    // Same program, capacity 1: producer stalls on full queues.
    MtProgram prog;
    prog.num_queues = 1;
    {
        FunctionBuilder b("c");
        Reg n = b.param();
        (void)n;
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg v1 = b.func().newReg();
        Reg v2 = b.func().newReg();
        b.func().append(bb, {.op = Opcode::Consume, .dst = v1,
                             .queue = 0});
        b.func().append(bb, {.op = Opcode::Consume, .dst = v2,
                             .queue = 0});
        Reg s = b.add(v1, v2);
        b.ret({s});
        prog.threads.push_back(b.finish());
    }
    {
        FunctionBuilder b("p");
        Reg n = b.param();
        (void)n;
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg a = b.constI(4);
        Reg c = b.constI(5);
        b.func().append(bb, {.op = Opcode::Produce, .src1 = a,
                             .queue = 0});
        b.func().append(bb, {.op = Opcode::Produce, .src1 = c,
                             .queue = 0});
        b.ret({});
        prog.threads.push_back(b.finish());
    }
    prog.queue_capacity = 1;
    MemoryImage mem;
    CmpSimulator sim(MachineConfig::paperDefault());
    auto r = sim.run(prog, {0}, mem);
    EXPECT_EQ(r.live_outs[0], 9);
}

// Third-oracle property: the timing simulator's functional results
// agree with the reference interpreter for MTCG-generated code.
TEST(CmpSimulatorProperty, AgreesWithInterpreter)
{
    Rng rng(112233);
    for (int trial = 0; trial < 15; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        verifyOrDie(f);
        Pdg pdg = buildPdg(f);
        auto pdom = DominatorTree::postDominators(f);
        ControlDependence cd(f, pdom);
        ThreadPartition p;
        p.num_threads = 2;
        p.assign.resize(f.numInstrs());
        for (auto &x : p.assign)
            x = static_cast<int>(rng.nextBelow(2));
        CommPlan plan = defaultMtcgPlan(f, pdg, p, cd);
        MtProgram prog = runMtcg(f, pdg, p, plan, cd);

        std::vector<int64_t> args{rng.nextRange(-9, 9),
                                  rng.nextRange(-9, 9)};
        MemoryImage ref_mem;
        ref_mem.alloc(gen.array_cells);
        auto ref = interpret(f, args, ref_mem);

        MemoryImage sim_mem;
        sim_mem.alloc(gen.array_cells);
        CmpSimulator sim(MachineConfig::paperDefault());
        auto r = sim.run(prog, args, sim_mem);
        ASSERT_EQ(r.live_outs, ref.live_outs) << "trial " << trial;
        ASSERT_TRUE(sim_mem == ref_mem) << "trial " << trial;
        ASSERT_TRUE(r.queues_drained);
    }
}

} // namespace
} // namespace gmt
