#include <gtest/gtest.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/coco.hpp"
#include "coco/validate.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/comm_plan.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

/**
 * Failure injection: the independent plan validator must reject
 * corrupted plans. Each test takes a valid plan and breaks it in a
 * specific way; a validator that misses any of these would also wave
 * through a buggy optimizer.
 */
struct Fixture
{
    Fixture()
        : f(buildFunc()), pdg(buildPdg(f)),
          pdom(DominatorTree::postDominators(f)), cd(f, pdom)
    {
        partition.num_threads = 2;
        partition.assign.assign(f.numInstrs(), 0);
        // Everything in the join block (id 3) belongs to thread 1.
        for (InstrId i : f.block(3).instrs())
            partition.assign[i] = 1;
        plan = defaultMtcgPlan(f, pdg, partition, cd);
    }

    static Function
    buildFunc()
    {
        // top -> (then|else) -> join; r defined in both arms,
        // consumed in join by thread 1.
        FunctionBuilder b("victim");
        Reg c = b.param();
        BlockId top = b.newBlock("top");
        BlockId then_b = b.newBlock("then");
        BlockId else_b = b.newBlock("else");
        BlockId join = b.newBlock("join");
        b.setBlock(top);
        Reg r = b.constI(0);
        b.br(c, then_b, else_b);
        b.setBlock(then_b);
        b.constInto(r, 1);
        b.jmp(join);
        b.setBlock(else_b);
        b.constInto(r, 2);
        b.jmp(join);
        b.setBlock(join);
        Reg s = b.addImm(r, 5);
        b.ret({s});
        Function f = b.finish();
        splitCriticalEdges(f);
        verifyOrDie(f);
        return f;
    }

    Function f;
    Pdg pdg;
    DominatorTree pdom;
    ControlDependence cd;
    ThreadPartition partition;
    CommPlan plan;
};

TEST(Validate, AcceptsDefaultPlan)
{
    Fixture fx;
    EXPECT_TRUE(
        validatePlan(fx.f, fx.pdg, fx.partition, fx.cd, fx.plan)
            .empty());
}

TEST(Validate, AcceptsCocoPlan)
{
    Fixture fx;
    MemoryImage mem;
    auto run = interpret(fx.f, {1}, mem);
    auto profile = EdgeProfile::fromRun(fx.f, run.profile);
    auto coco = cocoOptimize(fx.f, fx.pdg, fx.partition, fx.cd,
                             profile);
    EXPECT_TRUE(
        validatePlan(fx.f, fx.pdg, fx.partition, fx.cd, coco.plan)
            .empty());
}

TEST(Validate, RejectsDroppedPlacement)
{
    Fixture fx;
    // Remove one register placement entirely: some def -> use path
    // becomes uncovered.
    bool dropped = false;
    CommPlan broken;
    for (const auto &pl : fx.plan.placements) {
        if (!dropped && pl.kind == CommKind::RegisterData) {
            dropped = true;
            continue;
        }
        broken.placements.push_back(pl);
    }
    ASSERT_TRUE(dropped);
    auto problems =
        validatePlan(fx.f, fx.pdg, fx.partition, fx.cd, broken);
    EXPECT_FALSE(problems.empty());
}

TEST(Validate, RejectsUnsafePoint)
{
    Fixture fx;
    // Move a placement of r (defined in the arms) up to the entry of
    // `top`, before the defs: stale-value communication.
    CommPlan broken = fx.plan;
    bool moved = false;
    for (auto &pl : broken.placements) {
        if (pl.kind == CommKind::RegisterData && !moved &&
            pl.points.size() == 1 && pl.points[0].block != 0) {
            pl.points = {{0, 0}};
            moved = true;
        }
    }
    ASSERT_TRUE(moved);
    auto problems =
        validatePlan(fx.f, fx.pdg, fx.partition, fx.cd, broken);
    EXPECT_FALSE(problems.empty());
}

TEST(Validate, RejectsInvalidPoint)
{
    Fixture fx;
    CommPlan broken = fx.plan;
    ASSERT_FALSE(broken.placements.empty());
    broken.placements[0].points.push_back({99, 0});
    auto problems =
        validatePlan(fx.f, fx.pdg, fx.partition, fx.cd, broken);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("invalid point"), std::string::npos);
}

TEST(Validate, RejectsPropertyTwoViolation)
{
    // A placement point inside a block controlled by a branch that is
    // not relevant to the source thread. Construct: thread 0 defines
    // r unconditionally; a hammock owned by thread 1 contains the
    // injected placement point.
    FunctionBuilder b("p2");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId arm = b.newBlock("arm");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg r = b.constI(7); // thread 0's def
    Reg cc = b.mov(c);   // thread 1's branch operand
    b.br(cc, arm, join);
    b.setBlock(arm);
    Reg x = b.constI(1);
    (void)x;
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.addImm(r, 1); // thread 1 uses r
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);
    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    ThreadPartition partition;
    partition.num_threads = 2;
    partition.assign.assign(f.numInstrs(), 1);
    partition.assign[f.block(top).instrs()[0]] = 0; // the const only

    CommPlan plan = defaultMtcgPlan(f, pdg, partition, cd);
    // Inject: also "communicate" r inside the arm, a point that is
    // control dependent on thread 1's branch — irrelevant to the
    // source thread 0.
    for (auto &pl : plan.placements) {
        if (pl.kind == CommKind::RegisterData && pl.src_thread == 0) {
            pl.points = {{arm, 0}};
        }
    }
    auto problems = validatePlan(f, pdg, partition, cd, plan);
    ASSERT_FALSE(problems.empty());
    bool found_p2 = false;
    for (const auto &p : problems)
        found_p2 |= p.find("Property 2") != std::string::npos;
    // Either Property 2 or coverage must flag it (moving the only
    // placement into the arm also uncovers the fall-through path).
    EXPECT_TRUE(found_p2 || !problems.empty());
}

// Property: on random programs, randomly corrupting a COCO plan by
// deleting one placement is always caught (the deleted dependence's
// path is uncovered).
TEST(ValidateProperty, DeletionAlwaysCaught)
{
    Rng rng(95959);
    int checked = 0;
    for (int trial = 0; trial < 20 && checked < 10; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        Pdg pdg = buildPdg(f);
        auto pdom = DominatorTree::postDominators(f);
        ControlDependence cd(f, pdom);
        ThreadPartition p;
        p.num_threads = 2;
        p.assign.resize(f.numInstrs());
        for (auto &x : p.assign)
            x = static_cast<int>(rng.nextBelow(2));
        CommPlan plan = defaultMtcgPlan(f, pdg, p, cd);
        if (plan.placements.empty())
            continue;
        ++checked;
        // Sanity: intact plan valid.
        ASSERT_TRUE(validatePlan(f, pdg, p, cd, plan).empty());
        // Delete a random placement. Branch-operand placements can
        // be redundant with the register-data placement for the same
        // register, so deletion of *register* placements that are
        // the sole cover must be caught; we delete and accept either
        // "caught" or "provably redundant" (re-validate agrees).
        size_t victim = rng.nextBelow(plan.placements.size());
        CommPlan broken;
        for (size_t i = 0; i < plan.placements.size(); ++i) {
            if (i != victim)
                broken.placements.push_back(plan.placements[i]);
        }
        auto problems = validatePlan(f, pdg, p, cd, broken);
        // The validator must never crash and must flag plans whose
        // coverage is actually broken; redundant placements exist
        // (e.g. operand comm for a branch also covered by a data
        // placement), so an empty result is acceptable only if
        // re-checking the specific deleted kind shows redundancy.
        if (problems.empty()) {
            // Deleted placement was redundant: deleting *all*
            // placements must still be caught.
            CommPlan none;
            EXPECT_FALSE(validatePlan(f, pdg, p, cd, none).empty());
        }
    }
    EXPECT_GE(checked, 5);
}

} // namespace
} // namespace gmt
