// Round-trip tests for the textual IR and the .gmt cell format: the
// printer's output is the canonical serialized form, parse(print(f))
// must be a bit-identical fixpoint over the whole workload matrix, and
// the pipeline must not be able to tell a loaded cell from a built one.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "workloads/serialize.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

// Field-wise structural equality, including the id numbering: loaded
// cells must key PDG nodes / partitions / comm plans identically.
void
expectSameFunction(const Function &a, const Function &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.numRegs(), b.numRegs());
    EXPECT_EQ(a.params(), b.params());
    EXPECT_EQ(a.liveOuts(), b.liveOuts());
    EXPECT_EQ(a.entry(), b.entry());
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    ASSERT_EQ(a.numInstrs(), b.numInstrs());
    for (BlockId bl = 0; bl < a.numBlocks(); ++bl) {
        EXPECT_EQ(a.block(bl).label(), b.block(bl).label());
        EXPECT_EQ(a.block(bl).succs(), b.block(bl).succs());
        EXPECT_EQ(a.block(bl).preds(), b.block(bl).preds());
        ASSERT_EQ(a.block(bl).instrs(), b.block(bl).instrs());
    }
    for (InstrId i = 0; i < a.numInstrs(); ++i) {
        const Instr &x = a.instr(i);
        const Instr &y = b.instr(i);
        EXPECT_EQ(x.op, y.op) << "instr " << i;
        EXPECT_EQ(x.dst, y.dst) << "instr " << i;
        EXPECT_EQ(x.src1, y.src1) << "instr " << i;
        EXPECT_EQ(x.src2, y.src2) << "instr " << i;
        EXPECT_EQ(x.imm, y.imm) << "instr " << i;
        EXPECT_EQ(x.alias, y.alias) << "instr " << i;
        EXPECT_EQ(x.queue, y.queue) << "instr " << i;
        EXPECT_EQ(x.block, y.block) << "instr " << i;
        EXPECT_EQ(x.origin, y.origin) << "instr " << i;
    }
}

TEST(IrRoundTrip, ParsePrintFixpointAllWorkloads)
{
    for (const Workload &w : allWorkloads()) {
        SCOPED_TRACE(w.name);
        std::string text = functionToString(w.func);
        Function parsed = parseFunction(text);
        verifyOrDie(parsed, {}, "parsed " + w.name);
        expectSameFunction(w.func, parsed);
        EXPECT_EQ(functionToString(parsed), text);
    }
}

TEST(IrRoundTrip, PrinterIsDeterministic)
{
    // Two independent builds of the matrix print byte-identically.
    std::vector<Workload> a = allWorkloads();
    std::vector<Workload> b = allWorkloads();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].name);
        EXPECT_EQ(functionToString(a[i].func),
                  functionToString(b[i].func));
        EXPECT_EQ(functionToString(a[i].func),
                  functionToString(a[i].func));
    }
}

TEST(IrRoundTrip, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parseFunction(""), FatalError);
    EXPECT_THROW(parseFunction("func @f( {\n}\n"), FatalError);
    EXPECT_THROW(parseFunction("func @f() {\n"), FatalError); // no }
    EXPECT_THROW(parseFunction("func @f() {\n    r0 = const 1\n}\n"),
                 FatalError); // instr before any block label
    EXPECT_THROW(
        parseFunction(
            "func @f() {\nb0:\n    jmp nowhere\n}\n"),
        FatalError); // unresolved label
    EXPECT_THROW(
        parseFunction(
            "func @f() {\nb0:\n    r0 = frobnicate r1\n}\n"),
        FatalError); // unknown opcode
    EXPECT_THROW(
        parseFunction("func @f() regs 1 {\nb0:\n    r5 = const 1\n    "
                      "ret\n}\n"),
        FatalError); // regs declared below what the text uses
}

TEST(IrRoundTrip, ParserAcceptsNegativeOffsetsAndNoReg)
{
    Function f = parseFunction("func @t(r0) regs 3 {\n"
                               "b0:  ; entry\n"
                               "    r1 = load [r0+-3] !alias2\n"
                               "    store [r0+-3] = r1 !alias2\n"
                               "    ret r1\n"
                               "}\n");
    EXPECT_EQ(f.instr(0).imm, -3);
    EXPECT_EQ(f.instr(0).alias, 2);
    EXPECT_EQ(f.numRegs(), 3);
    EXPECT_EQ(functionToString(f),
              "func @t(r0) regs 3 {\n"
              "b0:  ; entry\n"
              "    r1 = load [r0+-3] !alias2\n"
              "    store [r0+-3] = r1 !alias2\n"
              "    ret r1\n"
              "}\n");
}

TEST(CellRoundTrip, TextFixpointAndDigestStability)
{
    for (const Workload &w : allWorkloads()) {
        SCOPED_TRACE(w.name);
        std::string text = workloadToText(w);
        Workload loaded = workloadFromText(text, "<test>");
        EXPECT_EQ(workloadToText(loaded), text);
        EXPECT_EQ(loaded.name, w.name);
        EXPECT_EQ(loaded.function_name, w.function_name);
        EXPECT_EQ(loaded.exec_percent, w.exec_percent);
        EXPECT_EQ(loaded.mem_cells, w.mem_cells);
        EXPECT_EQ(loaded.train_args, w.train_args);
        EXPECT_EQ(loaded.ref_args, w.ref_args);
        expectSameFunction(w.func, loaded.func);

        // The rebuilt fill writes the same image as the original.
        for (bool ref : {false, true}) {
            MemoryImage orig, redo;
            orig.alloc(w.mem_cells);
            redo.alloc(loaded.mem_cells);
            if (w.fill)
                w.fill(orig, ref);
            if (loaded.fill)
                loaded.fill(redo, ref);
            EXPECT_TRUE(orig == redo) << "ref=" << ref;
        }

        // Digest is a function of content alone.
        Workload again = workloadFromText(text, "<elsewhere>");
        EXPECT_EQ(again.digest, loaded.digest);
        EXPECT_FALSE(loaded.digest.empty());
        EXPECT_EQ(loaded.cacheKey(), w.name + "#" + loaded.digest);
        EXPECT_EQ(w.cacheKey(), w.name); // built-ins keep bare names
    }
}

TEST(CellRoundTrip, GoldenCorpusMatchesBuilders)
{
    // The checked-in corpus under workloads/ir/ must be byte-identical
    // to what the builders serialize to today. Regenerate with:
    //   build/tools/gmt-dump --out-dir workloads/ir
    std::string dir = GMT_GOLDEN_IR_DIR;
    for (const Workload &w : allWorkloads()) {
        SCOPED_TRACE(w.name);
        std::string path = dir + "/" + w.name + ".gmt";
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good()) << "missing golden " << path
                               << " (run gmt-dump --out-dir "
                                  "workloads/ir)";
        std::ostringstream buf;
        buf << in.rdbuf();
        EXPECT_EQ(buf.str(), workloadToText(w));
    }
}

TEST(CellRoundTrip, PipelineResultsIdenticalBuiltVsLoaded)
{
    // The acceptance criterion behind the figures: a cell loaded from
    // its serialized text must produce the same PipelineResult as the
    // compiled-in builder, over the full scheduler x COCO matrix.
    // Counts-only (simulate=false) for most cells to keep the test
    // fast; one fully simulated cell guards the timing path.
    for (const Workload &w : allWorkloads()) {
        SCOPED_TRACE(w.name);
        Workload loaded = workloadFromText(workloadToText(w), "<test>");
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions opts;
                opts.scheduler = sched;
                opts.use_coco = coco;
                opts.simulate =
                    (w.name == "adpcmdec" && sched == Scheduler::Dswp);
                PipelineResult built = runPipeline(w, opts);
                PipelineResult from_text = runPipeline(loaded, opts);
                EXPECT_TRUE(built == from_text)
                    << w.name << "/" << schedulerName(sched)
                    << (coco ? "+COCO" : "");
            }
        }
    }
}

TEST(Registry, ReplaceOrAppendAndDirectoryLoad)
{
    namespace fs = std::filesystem;
    WorkloadRegistry reg;
    size_t builtin_count = reg.workloads().size();
    ASSERT_EQ(builtin_count, 11u);

    // Same-name add replaces in place; new name appends.
    Workload clone =
        workloadFromText(workloadToText(reg.workloads()[2]), "<t>");
    ASSERT_EQ(clone.name, "ks");
    reg.add(clone);
    EXPECT_EQ(reg.workloads().size(), builtin_count);
    EXPECT_EQ(reg.workloads()[2].name, "ks");
    EXPECT_FALSE(reg.workloads()[2].digest.empty());

    Workload fresh = clone;
    fresh.name = "ks2";
    reg.add(fresh);
    ASSERT_EQ(reg.workloads().size(), builtin_count + 1);
    EXPECT_EQ(reg.workloads().back().name, "ks2");

    // Directory loading: dump two cells, load them back.
    fs::path dir =
        fs::temp_directory_path() / "gmt_registry_test_corpus";
    fs::remove_all(dir);
    fs::create_directories(dir);
    Workload a = allWorkloads()[0];
    saveWorkloadFile(a, (dir / (a.name + ".gmt")).string());
    Workload b = workloadFromText(workloadToText(a), "<t>");
    b.name = "extra";
    saveWorkloadFile(b, (dir / "extra.gmt").string());

    WorkloadRegistry reg2;
    EXPECT_EQ(reg2.loadDirectory(dir.string()), 2);
    ASSERT_EQ(reg2.workloads().size(), builtin_count + 1);
    EXPECT_EQ(reg2.workloads()[0].name, a.name); // replaced in place
    EXPECT_FALSE(reg2.workloads()[0].digest.empty());
    EXPECT_EQ(reg2.workloads().back().name, "extra");
    fs::remove_all(dir);

    EXPECT_THROW(WorkloadRegistry().loadDirectory(
                     (dir / "does_not_exist").string()),
                 FatalError);
}

} // namespace
} // namespace gmt
