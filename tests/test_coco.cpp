#include <gtest/gtest.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "coco/coco.hpp"
#include "coco/validate.hpp"
#include "equiv.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

struct PipelineState
{
    // Heap-allocated: Pdg and ControlDependence reference the
    // Function, so its address must be stable.
    std::unique_ptr<Function> func;
    std::unique_ptr<Pdg> pdg_ptr;
    std::unique_ptr<ControlDependence> cd;
    EdgeProfile profile;

    Function &f;
    Pdg &pdg;
};

PipelineState
prepare(Function fin, const std::vector<int64_t> &train_args,
        int64_t mem_cells)
{
    auto func = std::make_unique<Function>(std::move(fin));
    Function &f = *func;
    splitCriticalEdges(f);
    verifyOrDie(f);
    MemoryImage mem;
    mem.alloc(mem_cells);
    auto run = interpret(f, train_args, mem);
    auto profile = EdgeProfile::fromRun(f, run.profile);
    auto pdg = std::make_unique<Pdg>(buildPdg(f));
    auto pdom = DominatorTree::postDominators(f);
    auto cd = std::make_unique<ControlDependence>(f, pdom);
    Function &fr = *func;
    Pdg &pr = *pdg;
    return {std::move(func), std::move(pdg), std::move(cd),
            std::move(profile), fr, pr};
}

/** Paper Figure 4: two sequential loops, single live-out register. */
Function
buildFigure4(Reg *out_r1)
{
    FunctionBuilder b("fig4");
    Reg n = b.param();
    BlockId l1 = b.newBlock("B2");   // loop 1 body (entry)
    BlockId pre2 = b.newBlock("B3"); // between the loops
    BlockId l2 = b.newBlock("B4");   // loop 2 body
    BlockId done = b.newBlock("B5");

    b.setBlock(l1);
    Reg i = b.func().newReg();
    Reg r1 = b.func().newReg();
    b.addInto(r1, r1, i);  // B: r1 = f(i, r1)
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg c1 = b.cmpLt(i, n);
    b.br(c1, l1, pre2);    // C

    b.setBlock(pre2);
    Reg j = b.constI(0);   // D
    b.jmp(l2);

    b.setBlock(l2);
    Reg acc = b.func().newReg();
    b.addInto(acc, acc, r1); // E: consumes r1
    Reg one2 = b.constI(1);  // loop 2's own constant: r1 must be the
    Reg m = b.mov(n);        // only cross-thread register (n is a
    b.addInto(j, j, one2);   // param, broadcast at spawn)
    Reg c2 = b.cmpLt(j, m);
    b.br(c2, l2, done);      // F

    b.setBlock(done);
    b.ret({acc});            // G
    *out_r1 = r1;
    return b.finish();
}

ThreadPartition
figure4Partition(const Function &f)
{
    // T_s = loop 1, T_t = everything from B3 on (paper's split).
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    for (InstrId i = 0; i < f.numInstrs(); ++i) {
        // Blocks 1,2,3 are pre2, l2, done in creation order.
        if (f.instr(i).block != 0)
            p.assign[i] = 1;
    }
    return p;
}

TEST(CocoFigure4, MovesCommunicationOutOfLoop)
{
    Reg r1 = kNoReg;
    auto st = prepare(buildFigure4(&r1), {10}, 0);
    auto partition = figure4Partition(st.f);

    auto coco = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                             st.profile);
    EXPECT_TRUE(
        validatePlan(st.f, st.pdg, partition, *st.cd, coco.plan)
            .empty());

    // The r1 placement must be a single point outside loop 1 (the
    // paper's "drastically reduces ... from 10 down to 1").
    const CommPlacement *r1_pl = nullptr;
    for (const auto &pl : coco.plan.placements) {
        if (pl.kind == CommKind::RegisterData && pl.reg == r1)
            r1_pl = &pl;
    }
    ASSERT_NE(r1_pl, nullptr);
    ASSERT_EQ(r1_pl->points.size(), 1u);
    EXPECT_EQ(st.profile.pointWeight(r1_pl->points[0]), 1u);

    // Runtime confirmation: one produce total, and the target thread
    // no longer replicates loop 1's branch.
    MtProgram prog = runMtcg(st.f, st.pdg, partition, coco.plan,
                             *st.cd);
    auto out = checkEquivalence(st.f, prog, {10}, 0, nullptr,
                                SchedulePolicy::RoundRobin, 0);
    ASSERT_TRUE(out.ok) << out.detail;
    uint64_t produces = 0;
    for (const auto &s : out.mt.stats)
        produces += s.produces;
    EXPECT_EQ(produces, 1u);
    EXPECT_EQ(out.mt.stats[1].duplicated_branches, 0u);

    // Default MTCG baseline: one produce per loop-1 iteration plus
    // the replicated loop branch in the target thread.
    CommPlan def = defaultMtcgPlan(st.f, st.pdg, partition, *st.cd);
    MtProgram base = runMtcg(st.f, st.pdg, partition, def, *st.cd);
    auto base_out = checkEquivalence(st.f, base, {10}, 0, nullptr,
                                     SchedulePolicy::RoundRobin, 0);
    ASSERT_TRUE(base_out.ok) << base_out.detail;
    EXPECT_GE(base_out.mt.totalCommunication(),
              10 * 2u); // >= 10 produce/consume pairs
    EXPECT_GT(base_out.mt.stats[1].duplicated_branches, 0u);
    EXPECT_LT(out.mt.totalCommunication(),
              base_out.mt.totalCommunication());
}

/**
 * Paper Figure 5 (register part): r1 defined in both arms of a
 * hammock (blocks B3 weight 3, B4 weight 5), merged in B6 (weight 8),
 * used and then redefined by the target thread in B7. Without
 * penalties the cuts {B3,B4} and {B6} tie at cost 8; the control-flow
 * penalty (branch B weight 8 irrelevant to T_t) must pick B6.
 */
struct Fig5
{
    Function f{"fig5"};
    Reg r1 = kNoReg, rb = kNoReg;
    BlockId b3 = kNoBlock, b4 = kNoBlock, b6 = kNoBlock,
            b7 = kNoBlock;
};

Fig5
buildFigure5()
{
    Fig5 fig;
    FunctionBuilder b("fig5");
    Reg sel = b.param();   // branch operand source
    Reg x = b.param();
    BlockId b2 = b.newBlock("B2");
    BlockId b3 = b.newBlock("B3");
    BlockId b4 = b.newBlock("B4");
    BlockId b6 = b.newBlock("B6");
    BlockId b7 = b.newBlock("B7");

    b.setBlock(b2);
    Reg r1 = b.func().newReg();
    Reg rb = b.mov(sel); // A
    b.br(rb, b3, b4);    // B

    b.setBlock(b3);
    Reg c1 = b.constI(1);
    b.addInto(r1, x, c1); // C: r1 = x + 1
    b.jmp(b6);

    b.setBlock(b4);
    Reg c2 = b.constI(2);
    b.addInto(r1, x, c2); // E: r1 = x + 2
    b.jmp(b6);

    b.setBlock(b6);
    Reg g = b.addImm(x, 7); // G (source-thread work in B6)
    b.jmp(b7);

    b.setBlock(b7);
    Reg use = b.addImm(r1, 1); // H (target): uses r1
    b.constInto(r1, 0);        // F (target): redefines r1
    Reg res = b.add(use, g);
    b.ret({res});

    fig.f = b.finish();
    fig.r1 = r1;
    fig.rb = rb;
    fig.b3 = b3;
    fig.b4 = b4;
    fig.b6 = b6;
    fig.b7 = b7;
    return fig;
}

TEST(CocoFigure5, PenaltiesAvoidMakingBranchRelevant)
{
    Fig5 fig = buildFigure5();
    splitCriticalEdges(fig.f);
    verifyOrDie(fig.f);

    // Synthetic profile matching the paper's weights: run the branch
    // 8 times, 3 taken / 5 not taken.
    MemoryImage mem;
    ProfileData prof_data;
    prof_data.block_counts.assign(fig.f.numBlocks(), 0);
    prof_data.edge_counts.resize(fig.f.numBlocks());
    for (BlockId blk = 0; blk < fig.f.numBlocks(); ++blk) {
        prof_data.edge_counts[blk].assign(
            fig.f.block(blk).succs().size(), 0);
    }
    // All blocks execute 8 times except the arms (3 and 5).
    for (BlockId blk = 0; blk < fig.f.numBlocks(); ++blk)
        prof_data.block_counts[blk] = 8;
    prof_data.block_counts[fig.b3] = 3;
    prof_data.block_counts[fig.b4] = 5;
    prof_data.edge_counts[0][0] = 3; // B2 -> B3
    prof_data.edge_counts[0][1] = 5; // B2 -> B4
    prof_data.edge_counts[fig.b3][0] = 3;
    prof_data.edge_counts[fig.b4][0] = 5;
    prof_data.edge_counts[fig.b6][0] = 8;
    auto profile = EdgeProfile::fromRun(fig.f, prof_data);

    Pdg pdg = buildPdg(fig.f);
    auto pdom = DominatorTree::postDominators(fig.f);
    ControlDependence cd(fig.f, pdom);

    // T_s owns everything up to and including B6; T_t owns B7.
    ThreadPartition partition;
    partition.num_threads = 2;
    partition.assign.assign(fig.f.numInstrs(), 0);
    for (InstrId i : fig.f.block(fig.b7).instrs())
        partition.assign[i] = 1;

    auto with_pen = cocoOptimize(fig.f, pdg, partition, cd, profile,
                                 {.control_flow_penalties = true});
    EXPECT_TRUE(
        validatePlan(fig.f, pdg, partition, cd, with_pen.plan).empty());

    // r1's placement must sit in B6 (or later before B7's use), not
    // in the arms — so no point may be control dependent on branch B.
    bool found = false;
    for (const auto &pl : with_pen.plan.placements) {
        if (pl.kind != CommKind::RegisterData || pl.reg != fig.r1)
            continue;
        found = true;
        for (const auto &p : pl.points) {
            EXPECT_NE(p.block, fig.b3);
            EXPECT_NE(p.block, fig.b4);
            EXPECT_TRUE(cd.dependsOn(p.block).empty())
                << "point in conditionally-executed block "
                << fig.f.block(p.block).label();
        }
    }
    EXPECT_TRUE(found);

    // Runtime: the target thread must not replicate branch B.
    MtProgram prog =
        runMtcg(fig.f, pdg, partition, with_pen.plan, cd);
    for (int64_t sel : {0, 1}) {
        auto out = checkEquivalence(fig.f, prog, {sel, 10}, 0, nullptr,
                                    SchedulePolicy::RoundRobin, 0);
        ASSERT_TRUE(out.ok) << out.detail;
        EXPECT_EQ(out.mt.stats[1].duplicated_branches, 0u);
    }
}

TEST(CocoMemory, SharedSyncAcrossDisjointDeps)
{
    // T_s stores to two disjoint alias classes; T_t loads both later.
    // The multi-pair cut shares one synchronization point; default
    // MTCG inserts one sync per store.
    FunctionBuilder b("memshare");
    Reg a = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v1 = b.constI(11);
    Reg v2 = b.constI(22);
    b.store(a, 0, v1, 1); // class 1
    b.store(a, 1, v2, 2); // class 2
    Reg l1 = b.load(a, 0, 1);
    Reg l2 = b.load(a, 1, 2);
    Reg s = b.add(l1, l2);
    b.ret({s});
    auto st = prepare(b.finish(), {0}, 4);

    ThreadPartition partition;
    partition.num_threads = 2;
    partition.assign.assign(st.f.numInstrs(), 0);
    // Loads and everything after belong to T_t.
    const auto &ins = st.f.block(0).instrs();
    for (size_t k = 4; k < ins.size(); ++k)
        partition.assign[ins[k]] = 1;

    auto coco = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                             st.profile);
    EXPECT_TRUE(
        validatePlan(st.f, st.pdg, partition, *st.cd, coco.plan)
            .empty());

    // One memory placement with one shared point.
    int mem_placements = 0;
    size_t mem_points = 0;
    for (const auto &pl : coco.plan.placements) {
        if (pl.kind == CommKind::MemorySync) {
            ++mem_placements;
            mem_points += pl.points.size();
        }
    }
    EXPECT_EQ(mem_placements, 1);
    EXPECT_EQ(mem_points, 1u);

    MtProgram prog =
        runMtcg(st.f, st.pdg, partition, coco.plan, *st.cd);
    auto out = checkEquivalence(st.f, prog, {0}, 4, nullptr,
                                SchedulePolicy::Random, 7);
    ASSERT_TRUE(out.ok) << out.detail;
    uint64_t syncs = 0;
    for (const auto &s2 : out.mt.stats)
        syncs += s2.produce_syncs;
    EXPECT_EQ(syncs, 1u);

    // Default MTCG: one sync per (source, target-thread).
    CommPlan def = defaultMtcgPlan(st.f, st.pdg, partition, *st.cd);
    MtProgram base = runMtcg(st.f, st.pdg, partition, def, *st.cd);
    auto bout = checkEquivalence(st.f, base, {0}, 4, nullptr,
                                 SchedulePolicy::Random, 7);
    ASSERT_TRUE(bout.ok) << bout.detail;
    uint64_t base_syncs = 0;
    for (const auto &s2 : bout.mt.stats)
        base_syncs += s2.produce_syncs;
    EXPECT_EQ(base_syncs, 2u);
}

TEST(Coco, ConvergesWithinIterationBudget)
{
    Rng rng(515);
    for (int trial = 0; trial < 10; ++trial) {
        auto gen = generateProgram(rng);
        auto st = prepare(std::move(gen.func), {4, 9},
                          gen.array_cells);
        auto partition =
            gremioPartition(st.pdg, st.profile, {.num_threads = 2});
        auto coco = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                                 st.profile, {.max_iterations = 16});
        EXPECT_LT(coco.iterations, 16);
    }
}

// The central COCO properties, on random programs x partitions:
//  (1) the plan passes the independent validator;
//  (2) generated code is observationally equivalent to ST for many
//      schedules and queue capacities;
//  (3) dynamic communication never exceeds default MTCG when the
//      evaluation input matches the profiled input (paper: "COCO
//      never resulted in an increase").
class CocoProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CocoProperty, ValidEquivalentAndNeverWorse)
{
    const int num_threads = GetParam();
    Rng rng(24000 + num_threads);
    for (int trial = 0; trial < 20; ++trial) {
        auto gen = generateProgram(rng);
        std::vector<int64_t> args{rng.nextRange(-15, 15),
                                  rng.nextRange(-15, 15)};
        auto st = prepare(std::move(gen.func), args, gen.array_cells);

        ThreadPartition partition;
        partition.num_threads = num_threads;
        partition.assign.resize(st.f.numInstrs());
        for (auto &x : partition.assign)
            x = static_cast<int>(rng.nextBelow(num_threads));

        auto coco = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                                 st.profile);
        auto problems =
            validatePlan(st.f, st.pdg, partition, *st.cd, coco.plan);
        ASSERT_TRUE(problems.empty())
            << "trial " << trial << ": " << problems[0] << "\n"
            << functionToString(st.f);

        MtProgram prog = runMtcg(st.f, st.pdg, partition, coco.plan,
                                 *st.cd, {.queue_capacity = 1});
        CommPlan def =
            defaultMtcgPlan(st.f, st.pdg, partition, *st.cd);
        MtProgram base =
            runMtcg(st.f, st.pdg, partition, def, *st.cd,
                    {.queue_capacity = 1});

        // Same-input comparison (profile == evaluation input).
        auto coco_run = checkEquivalence(st.f, prog, args,
                                         gen.array_cells, nullptr,
                                         SchedulePolicy::RoundRobin, 0);
        ASSERT_TRUE(coco_run.ok)
            << coco_run.detail << " trial=" << trial << "\n"
            << functionToString(st.f);
        auto base_run = checkEquivalence(st.f, base, args,
                                         gen.array_cells, nullptr,
                                         SchedulePolicy::RoundRobin, 0);
        ASSERT_TRUE(base_run.ok) << base_run.detail;
        ASSERT_LE(coco_run.mt.totalCommunication(),
                  base_run.mt.totalCommunication())
            << "COCO increased communication, trial " << trial;

        // Different inputs + random schedules: equivalence only.
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            std::vector<int64_t> other{rng.nextRange(-15, 15),
                                       rng.nextRange(-15, 15)};
            auto out = checkEquivalence(st.f, prog, other,
                                        gen.array_cells, nullptr,
                                        SchedulePolicy::Random, seed);
            ASSERT_TRUE(out.ok)
                << out.detail << " trial=" << trial << " seed=" << seed
                << "\n" << functionToString(st.f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, CocoProperty, ::testing::Values(2, 3),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

// COCO with the alternative max-flow algorithms must produce plans
// that are equally valid and equally cheap (min-cut values are
// unique even when the cuts differ).
TEST(CocoAlgorithms, DinicAndPushRelabelAgreeOnCost)
{
    Rng rng(868686);
    for (int trial = 0; trial < 8; ++trial) {
        auto gen = generateProgram(rng);
        auto st = prepare(std::move(gen.func), {5, 5},
                          gen.array_cells);
        ThreadPartition partition;
        partition.num_threads = 2;
        partition.assign.resize(st.f.numInstrs());
        for (auto &x : partition.assign)
            x = static_cast<int>(rng.nextBelow(2));

        CocoResult results[3];
        FlowAlgorithm algos[3] = {FlowAlgorithm::EdmondsKarp,
                                  FlowAlgorithm::Dinic,
                                  FlowAlgorithm::PushRelabel};
        for (int k = 0; k < 3; ++k) {
            CocoOptions opts;
            opts.flow_algo = algos[k];
            results[k] = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                                      st.profile, opts);
            ASSERT_TRUE(validatePlan(st.f, st.pdg, partition, *st.cd,
                                     results[k].plan)
                            .empty())
                << "algo " << k << " trial " << trial;
            MtProgram prog = runMtcg(st.f, st.pdg, partition,
                                     results[k].plan, *st.cd);
            auto out = checkEquivalence(st.f, prog, {5, 5},
                                        gen.array_cells, nullptr,
                                        SchedulePolicy::Random,
                                        trial);
            ASSERT_TRUE(out.ok) << out.detail << " algo " << k;
        }
        // Min-cut *values* agree even if the cut arcs differ.
        EXPECT_EQ(results[0].register_cut_cost,
                  results[1].register_cut_cost);
        EXPECT_EQ(results[0].register_cut_cost,
                  results[2].register_cut_cost);
    }
}

TEST(CocoEndToEnd, DswpAndGremioPartitions)
{
    Rng rng(717171);
    for (int trial = 0; trial < 10; ++trial) {
        auto gen = generateProgram(rng);
        auto st =
            prepare(std::move(gen.func), {6, -2}, gen.array_cells);
        for (bool use_dswp : {true, false}) {
            ThreadPartition partition =
                use_dswp
                    ? dswpPartition(st.pdg, st.profile,
                                    {.num_threads = 2})
                    : gremioPartition(st.pdg, st.profile,
                                      {.num_threads = 2});
            auto coco = cocoOptimize(st.f, st.pdg, partition, *st.cd,
                                     st.profile);
            ASSERT_TRUE(validatePlan(st.f, st.pdg, partition, *st.cd,
                                     coco.plan)
                            .empty());
            MtProgram prog = runMtcg(st.f, st.pdg, partition,
                                     coco.plan, *st.cd);
            auto out = checkEquivalence(st.f, prog, {6, -2},
                                        gen.array_cells, nullptr,
                                        SchedulePolicy::Random, trial);
            ASSERT_TRUE(out.ok) << out.detail << " dswp=" << use_dswp;
        }
    }
}

} // namespace
} // namespace gmt
