#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmt
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++hits[rng.nextBelow(8)];
    for (int h : hits)
        EXPECT_GT(h, 300); // expected 500 each
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability)
{
    Rng rng(17);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(trues / 10000.0, 0.25, 0.02);
}

} // namespace
} // namespace gmt
