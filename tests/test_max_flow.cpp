#include "graph/max_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

struct ArcSpec
{
    int u, v;
    Capacity cap;
};

FlowNetwork
makeNetwork(int n, const std::vector<ArcSpec> &arcs)
{
    FlowNetwork net(n);
    for (const auto &a : arcs)
        net.addArc(a.u, a.v, a.cap);
    return net;
}

// Brute-force min cut: enumerate every node bipartition with s on one
// side and t on the other; cost = capacity crossing S -> T.
Capacity
bruteMinCut(int n, const std::vector<ArcSpec> &arcs, int s, int t)
{
    Capacity best = kInfCapacity;
    for (int mask = 0; mask < (1 << n); ++mask) {
        if (!(mask & (1 << s)) || (mask & (1 << t)))
            continue;
        Capacity cost = 0;
        for (const auto &a : arcs) {
            if ((mask & (1 << a.u)) && !(mask & (1 << a.v)))
                cost += a.cap;
        }
        best = std::min(best, cost);
    }
    return best;
}

class MaxFlowAlgo : public ::testing::TestWithParam<FlowAlgorithm>
{
};

TEST_P(MaxFlowAlgo, SingleArc)
{
    auto net = makeNetwork(2, {{0, 1, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 5);
    auto cut = mf.minCutArcs();
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_EQ(net.arcTail(cut[0]), 0);
    EXPECT_EQ(net.arcHead(cut[0]), 1);
}

TEST_P(MaxFlowAlgo, Disconnected)
{
    auto net = makeNetwork(3, {{0, 1, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 2), 0);
    EXPECT_TRUE(mf.minCutArcs().empty());
}

TEST_P(MaxFlowAlgo, ClassicDiamond)
{
    // s=0, t=3; two paths of caps (3,2) and (2,3) plus cross arc.
    auto net = makeNetwork(4, {{0, 1, 3},
                               {0, 2, 2},
                               {1, 3, 2},
                               {2, 3, 3},
                               {1, 2, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 3), 5);
}

TEST_P(MaxFlowAlgo, InfiniteArcsAvoidedInCut)
{
    // s -> a (inf), a -> b (7), b -> t (inf): the only finite cut is
    // the middle arc.
    auto net = makeNetwork(4, {{0, 1, kInfCapacity},
                               {1, 2, 7},
                               {2, 3, kInfCapacity}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 3), 7);
    EXPECT_TRUE(mf.finite());
    auto cut = mf.minCutArcs();
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_EQ(net.arcCapacity(cut[0]), 7);
}

TEST_P(MaxFlowAlgo, NoFiniteCut)
{
    auto net = makeNetwork(2, {{0, 1, kInfCapacity}});
    MaxFlow mf(net, GetParam());
    mf.solve(0, 1);
    EXPECT_FALSE(mf.finite());
}

TEST_P(MaxFlowAlgo, ResetAllowsResolve)
{
    auto net = makeNetwork(2, {{0, 1, 9}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 9);
    mf.reset();
    EXPECT_EQ(mf.solve(0, 1), 9);
}

TEST_P(MaxFlowAlgo, RemoveArcZeroesCapacity)
{
    auto net = makeNetwork(2, {{0, 1, 9}});
    net.removeArc(0);
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 0);
}

// The cut returned must (a) separate s from t when its arcs are
// removed and (b) have total capacity equal to the max flow
// (max-flow/min-cut duality).
TEST_P(MaxFlowAlgo, PropertyCutMatchesBruteForce)
{
    Rng rng(777);
    for (int trial = 0; trial < 80; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBelow(7));
        std::vector<ArcSpec> arcs;
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.nextBool(0.4)) {
                    arcs.push_back(
                        {u, v, static_cast<Capacity>(rng.nextBelow(20))});
                }
            }
        }
        int s = 0, t = n - 1;
        auto net = makeNetwork(n, arcs);
        MaxFlow mf(net, GetParam());
        Capacity flow = mf.solve(s, t);
        Capacity brute = bruteMinCut(n, arcs, s, t);
        ASSERT_EQ(flow, brute) << "trial " << trial;

        auto cut = mf.minCutArcs();
        Capacity cut_cost = 0;
        for (int a : cut)
            cut_cost += net.arcCapacity(a);
        ASSERT_EQ(cut_cost, flow) << "duality violated, trial " << trial;

        // Removing the cut arcs must disconnect t from s.
        FlowNetwork pruned(n);
        for (size_t i = 0; i < arcs.size(); ++i) {
            if (std::find(cut.begin(), cut.end(), static_cast<int>(i)) ==
                cut.end()) {
                pruned.addArc(arcs[i].u, arcs[i].v, arcs[i].cap);
            }
        }
        MaxFlow check(pruned, GetParam());
        ASSERT_EQ(check.solve(s, t), 0) << "cut does not separate";
    }
}

// All three algorithms must agree on larger random networks (cross
// validation without brute force).
TEST(MaxFlowCross, AlgorithmsAgree)
{
    Rng rng(31337);
    for (int trial = 0; trial < 25; ++trial) {
        int n = 10 + static_cast<int>(rng.nextBelow(40));
        std::vector<ArcSpec> arcs;
        for (int e = 0; e < 4 * n; ++e) {
            int u = static_cast<int>(rng.nextBelow(n));
            int v = static_cast<int>(rng.nextBelow(n));
            if (u != v) {
                arcs.push_back(
                    {u, v, static_cast<Capacity>(rng.nextBelow(100))});
            }
        }
        Capacity flows[3];
        FlowAlgorithm algos[3] = {FlowAlgorithm::EdmondsKarp,
                                  FlowAlgorithm::Dinic,
                                  FlowAlgorithm::PushRelabel};
        for (int i = 0; i < 3; ++i) {
            auto net = makeNetwork(n, arcs);
            MaxFlow mf(net, algos[i]);
            flows[i] = mf.solve(0, n - 1);
        }
        ASSERT_EQ(flows[0], flows[1]) << "trial " << trial;
        ASSERT_EQ(flows[0], flows[2]) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MaxFlowAlgo,
                         ::testing::Values(FlowAlgorithm::EdmondsKarp,
                                           FlowAlgorithm::Dinic,
                                           FlowAlgorithm::PushRelabel,
                                           FlowAlgorithm::DinicPruned),
                         [](const auto &info) {
                             switch (info.param) {
                               case FlowAlgorithm::EdmondsKarp:
                                 return "EdmondsKarp";
                               case FlowAlgorithm::Dinic:
                                 return "Dinic";
                               case FlowAlgorithm::PushRelabel:
                                 return "PushRelabel";
                               default:
                                 return "DinicPruned";
                             }
                         });

} // namespace
} // namespace gmt
