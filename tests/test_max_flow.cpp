#include "graph/max_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

struct ArcSpec
{
    int u, v;
    Capacity cap;
};

FlowNetwork
makeNetwork(int n, const std::vector<ArcSpec> &arcs)
{
    FlowNetwork net(n);
    for (const auto &a : arcs)
        net.addArc(a.u, a.v, a.cap);
    return net;
}

// Brute-force min cut: enumerate every node bipartition with s on one
// side and t on the other; cost = capacity crossing S -> T.
Capacity
bruteMinCut(int n, const std::vector<ArcSpec> &arcs, int s, int t)
{
    Capacity best = kInfCapacity;
    for (int mask = 0; mask < (1 << n); ++mask) {
        if (!(mask & (1 << s)) || (mask & (1 << t)))
            continue;
        Capacity cost = 0;
        for (const auto &a : arcs) {
            if ((mask & (1 << a.u)) && !(mask & (1 << a.v)))
                cost += a.cap;
        }
        best = std::min(best, cost);
    }
    return best;
}

class MaxFlowAlgo : public ::testing::TestWithParam<FlowAlgorithm>
{
};

TEST_P(MaxFlowAlgo, SingleArc)
{
    auto net = makeNetwork(2, {{0, 1, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 5);
    auto cut = mf.minCutArcs();
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_EQ(net.arcTail(cut[0]), 0);
    EXPECT_EQ(net.arcHead(cut[0]), 1);
}

TEST_P(MaxFlowAlgo, Disconnected)
{
    auto net = makeNetwork(3, {{0, 1, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 2), 0);
    EXPECT_TRUE(mf.minCutArcs().empty());
}

TEST_P(MaxFlowAlgo, ClassicDiamond)
{
    // s=0, t=3; two paths of caps (3,2) and (2,3) plus cross arc.
    auto net = makeNetwork(4, {{0, 1, 3},
                               {0, 2, 2},
                               {1, 3, 2},
                               {2, 3, 3},
                               {1, 2, 5}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 3), 5);
}

TEST_P(MaxFlowAlgo, InfiniteArcsAvoidedInCut)
{
    // s -> a (inf), a -> b (7), b -> t (inf): the only finite cut is
    // the middle arc.
    auto net = makeNetwork(4, {{0, 1, kInfCapacity},
                               {1, 2, 7},
                               {2, 3, kInfCapacity}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 3), 7);
    EXPECT_TRUE(mf.finite());
    auto cut = mf.minCutArcs();
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_EQ(net.arcCapacity(cut[0]), 7);
}

TEST_P(MaxFlowAlgo, NoFiniteCut)
{
    auto net = makeNetwork(2, {{0, 1, kInfCapacity}});
    MaxFlow mf(net, GetParam());
    mf.solve(0, 1);
    EXPECT_FALSE(mf.finite());
}

TEST_P(MaxFlowAlgo, ResetAllowsResolve)
{
    auto net = makeNetwork(2, {{0, 1, 9}});
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 9);
    mf.reset();
    EXPECT_EQ(mf.solve(0, 1), 9);
}

TEST_P(MaxFlowAlgo, RemoveArcZeroesCapacity)
{
    auto net = makeNetwork(2, {{0, 1, 9}});
    net.removeArc(0);
    MaxFlow mf(net, GetParam());
    EXPECT_EQ(mf.solve(0, 1), 0);
}

// The cut returned must (a) separate s from t when its arcs are
// removed and (b) have total capacity equal to the max flow
// (max-flow/min-cut duality).
TEST_P(MaxFlowAlgo, PropertyCutMatchesBruteForce)
{
    Rng rng(777);
    for (int trial = 0; trial < 80; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBelow(7));
        std::vector<ArcSpec> arcs;
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.nextBool(0.4)) {
                    arcs.push_back(
                        {u, v, static_cast<Capacity>(rng.nextBelow(20))});
                }
            }
        }
        int s = 0, t = n - 1;
        auto net = makeNetwork(n, arcs);
        MaxFlow mf(net, GetParam());
        Capacity flow = mf.solve(s, t);
        Capacity brute = bruteMinCut(n, arcs, s, t);
        ASSERT_EQ(flow, brute) << "trial " << trial;

        auto cut = mf.minCutArcs();
        Capacity cut_cost = 0;
        for (int a : cut)
            cut_cost += net.arcCapacity(a);
        ASSERT_EQ(cut_cost, flow) << "duality violated, trial " << trial;

        // Removing the cut arcs must disconnect t from s.
        FlowNetwork pruned(n);
        for (size_t i = 0; i < arcs.size(); ++i) {
            if (std::find(cut.begin(), cut.end(), static_cast<int>(i)) ==
                cut.end()) {
                pruned.addArc(arcs[i].u, arcs[i].v, arcs[i].cap);
            }
        }
        MaxFlow check(pruned, GetParam());
        ASSERT_EQ(check.solve(s, t), 0) << "cut does not separate";
    }
}

// Randomized incremental sequences: a long run of arc retunes,
// removals, and revivals applied through resolve() must track a
// from-scratch solve of the same capacitated network exactly — flow
// value, source-side min cut, and sink-side min cut (each unique
// across all max flows, so "exactly" is well-defined).
TEST_P(MaxFlowAlgo, RandomIncrementalSequences)
{
    Rng rng(0xC0C0 + static_cast<int>(GetParam()));
    const int n = 8;
    std::vector<ArcSpec> arcs;
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u != v && rng.nextBool(0.35)) {
                // Zero-cap arcs participate too: a later retune
                // "adds" them (resolve has no topology changes, so
                // additions are pre-created dormant arcs).
                arcs.push_back(
                    {u, v, static_cast<Capacity>(rng.nextBelow(25))});
            }
        }
    }
    ASSERT_GE(arcs.size(), 8u);
    const int s = 0, t = n - 1;

    auto net = makeNetwork(n, arcs);
    MaxFlow warm(net, GetParam());
    warm.solve(s, t);

    std::vector<Capacity> model_cap;
    std::vector<bool> model_removed(arcs.size(), false);
    for (const auto &a : arcs)
        model_cap.push_back(a.cap);

    for (int step = 0; step < 120; ++step) {
        std::vector<ArcDelta> deltas;
        int k = 1 + static_cast<int>(rng.nextBelow(3));
        for (int i = 0; i < k; ++i) {
            int a = static_cast<int>(rng.nextBelow(arcs.size()));
            ArcDelta d;
            d.arc = a;
            if (rng.nextBelow(4) == 0) { // remove
                d.remove = true;
                model_removed[a] = true;
            } else { // retune (revives a removed arc)
                d.cap = static_cast<Capacity>(rng.nextBelow(25));
                model_removed[a] = false;
                model_cap[a] = d.cap;
            }
            deltas.push_back(d);
        }
        Capacity warm_flow = warm.resolve(deltas);

        // From-scratch reference on the same capacitated network.
        FlowNetwork fresh(n);
        for (size_t a = 0; a < arcs.size(); ++a)
            fresh.addArc(arcs[a].u, arcs[a].v, model_cap[a]);
        for (size_t a = 0; a < arcs.size(); ++a) {
            if (model_removed[a])
                fresh.removeArc(static_cast<int>(a));
        }
        MaxFlow cold(fresh, FlowAlgorithm::EdmondsKarp);
        Capacity cold_flow = cold.solve(s, t);

        ASSERT_EQ(warm_flow, cold_flow) << "step " << step;
        ASSERT_EQ(warm.minCutArcs(CutSide::Source),
                  cold.minCutArcs(CutSide::Source))
            << "step " << step;
        ASSERT_EQ(warm.minCutArcs(CutSide::Sink),
                  cold.minCutArcs(CutSide::Sink))
            << "step " << step;
    }
}

// The reported cuts must not depend on solve history: a warm solver
// that wandered through other capacity assignments and came back must
// report the same cuts as a cold solve of the original network.
TEST_P(MaxFlowAlgo, CutIndependentOfSolveHistory)
{
    const std::vector<ArcSpec> arcs = {{0, 1, 3}, {0, 2, 2}, {1, 3, 2},
                                       {2, 3, 3}, {1, 2, 5}};
    auto cold_net = makeNetwork(4, arcs);
    MaxFlow cold(cold_net, FlowAlgorithm::EdmondsKarp);
    Capacity cold_flow = cold.solve(0, 3);

    auto warm_net = makeNetwork(4, arcs);
    MaxFlow warm(warm_net, GetParam());
    warm.solve(0, 3);
    // Detour: widen one arc, choke another, then restore both.
    warm.resolve({{2, 9, false}, {3, 1, false}});
    Capacity warm_flow = warm.resolve({{2, 2, false}, {3, 3, false}});

    EXPECT_EQ(warm_flow, cold_flow);
    EXPECT_EQ(warm.minCutArcs(CutSide::Source),
              cold.minCutArcs(CutSide::Source));
    EXPECT_EQ(warm.minCutArcs(CutSide::Sink),
              cold.minCutArcs(CutSide::Sink));
}

// Push-relabel always takes at least the initial exact-distance
// global relabeling (its termination argument leans on it).
TEST(MaxFlowStats, PushRelabelGlobalRelabels)
{
    auto net = makeNetwork(4, {{0, 1, 3},
                               {0, 2, 2},
                               {1, 3, 2},
                               {2, 3, 3},
                               {1, 2, 5}});
    MaxFlow mf(net, FlowAlgorithm::PushRelabel);
    EXPECT_EQ(mf.solve(0, 3), 5);
    EXPECT_GE(mf.stats().global_relabels, 1u);
}

// All three algorithms must agree on larger random networks (cross
// validation without brute force).
TEST(MaxFlowCross, AlgorithmsAgree)
{
    Rng rng(31337);
    for (int trial = 0; trial < 25; ++trial) {
        int n = 10 + static_cast<int>(rng.nextBelow(40));
        std::vector<ArcSpec> arcs;
        for (int e = 0; e < 4 * n; ++e) {
            int u = static_cast<int>(rng.nextBelow(n));
            int v = static_cast<int>(rng.nextBelow(n));
            if (u != v) {
                arcs.push_back(
                    {u, v, static_cast<Capacity>(rng.nextBelow(100))});
            }
        }
        Capacity flows[3];
        FlowAlgorithm algos[3] = {FlowAlgorithm::EdmondsKarp,
                                  FlowAlgorithm::Dinic,
                                  FlowAlgorithm::PushRelabel};
        for (int i = 0; i < 3; ++i) {
            auto net = makeNetwork(n, arcs);
            MaxFlow mf(net, algos[i]);
            flows[i] = mf.solve(0, n - 1);
        }
        ASSERT_EQ(flows[0], flows[1]) << "trial " << trial;
        ASSERT_EQ(flows[0], flows[2]) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MaxFlowAlgo,
                         ::testing::Values(FlowAlgorithm::EdmondsKarp,
                                           FlowAlgorithm::Dinic,
                                           FlowAlgorithm::PushRelabel,
                                           FlowAlgorithm::DinicPruned),
                         [](const auto &info) {
                             switch (info.param) {
                               case FlowAlgorithm::EdmondsKarp:
                                 return "EdmondsKarp";
                               case FlowAlgorithm::Dinic:
                                 return "Dinic";
                               case FlowAlgorithm::PushRelabel:
                                 return "PushRelabel";
                               default:
                                 return "DinicPruned";
                             }
                         });

} // namespace
} // namespace gmt
