#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace gmt
{
namespace
{

TEST(Digraph, AddNodesAndEdges)
{
    Digraph g;
    NodeId a = g.addNode();
    NodeId b = g.addNode();
    NodeId c = g.addNode();
    g.addEdge(a, b);
    g.addEdge(b, c);
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_TRUE(g.hasEdge(a, b));
    EXPECT_FALSE(g.hasEdge(b, a));
    EXPECT_EQ(g.succs(a).size(), 1u);
    EXPECT_EQ(g.preds(c).size(), 1u);
}

TEST(Digraph, ParallelEdgesCollapse)
{
    Digraph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    EXPECT_EQ(g.numEdges(), 1);
}

TEST(Digraph, TopoSortRespectsEdges)
{
    Digraph g(5);
    g.addEdge(0, 2);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(2, 4);
    auto order = g.topoSort();
    ASSERT_EQ(order.size(), 5u);
    std::vector<int> pos(5);
    for (int i = 0; i < 5; ++i)
        pos[order[i]] = i;
    for (NodeId u = 0; u < 5; ++u) {
        for (NodeId v : g.succs(u))
            EXPECT_LT(pos[u], pos[v]);
    }
}

TEST(Digraph, TopoSortDetectsCycle)
{
    Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    EXPECT_TRUE(g.topoSort().empty());
    EXPECT_FALSE(g.isAcyclic());
}

TEST(Digraph, EmptyGraphIsAcyclic)
{
    Digraph g;
    EXPECT_TRUE(g.isAcyclic());
}

TEST(Digraph, ReachableFrom)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    auto seen = g.reachableFrom(0);
    EXPECT_TRUE(seen[0]);
    EXPECT_TRUE(seen[1]);
    EXPECT_TRUE(seen[2]);
    EXPECT_FALSE(seen[3]);
}

// Property: on random DAGs (edges only low->high), topoSort succeeds
// and respects all edges.
TEST(DigraphProperty, RandomDagsSort)
{
    Rng rng(99);
    for (int trial = 0; trial < 40; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBelow(30));
        Digraph g(n);
        for (int u = 0; u < n; ++u) {
            for (int v = u + 1; v < n; ++v) {
                if (rng.nextBool(0.2))
                    g.addEdge(u, v);
            }
        }
        auto order = g.topoSort();
        ASSERT_EQ(static_cast<int>(order.size()), n);
        std::vector<int> pos(n);
        for (int i = 0; i < n; ++i)
            pos[order[i]] = i;
        for (NodeId u = 0; u < n; ++u) {
            for (NodeId v : g.succs(u))
                ASSERT_LT(pos[u], pos[v]);
        }
    }
}

} // namespace
} // namespace gmt
