#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/memory_image.hpp"
#include "runtime/mt_interpreter.hpp"
#include "runtime/sync_array.hpp"
#include "support/error.hpp"

namespace gmt
{
namespace
{

Function
buildLoopSum()
{
    FunctionBuilder b("loop_sum");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId done = b.newBlock("done");
    b.setBlock(head);
    Reg i = b.constI(0);
    Reg sum = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    b.addInto(sum, sum, i);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg again = b.cmpLt(i, n);
    b.br(again, body, done);
    b.setBlock(done);
    b.ret({sum});
    return b.finish();
}

TEST(MemoryImage, AllocAndAccess)
{
    MemoryImage mem;
    int64_t a = mem.alloc(4);
    int64_t b = mem.alloc(2);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 4);
    EXPECT_EQ(mem.size(), 6);
    mem.write(5, 99);
    EXPECT_EQ(mem.read(5), 99);
    EXPECT_EQ(mem.read(0), 0);
}

TEST(MemoryImage, OutOfBoundsFatal)
{
    MemoryImage mem;
    mem.alloc(1);
    EXPECT_THROW(mem.read(1), FatalError);
    EXPECT_THROW(mem.write(-1, 0), FatalError);
    EXPECT_THROW((void)mem.read(-5), FatalError);
}

TEST(Interpreter, LoopSum)
{
    Function f = buildLoopSum();
    verifyOrDie(f);
    MemoryImage mem;
    auto result = interpret(f, {10}, mem);
    ASSERT_EQ(result.live_outs.size(), 1u);
    EXPECT_EQ(result.live_outs[0], 45); // 0+1+...+9
}

TEST(Interpreter, EdgeProfileCounts)
{
    Function f = buildLoopSum();
    MemoryImage mem;
    auto result = interpret(f, {10}, mem);
    // head->body taken once; body->body 9 times; body->done once.
    EXPECT_EQ(result.profile.edgeCount(0, 0), 1u);
    EXPECT_EQ(result.profile.edgeCount(1, 0), 9u);
    EXPECT_EQ(result.profile.edgeCount(1, 1), 1u);
    EXPECT_EQ(result.profile.block_counts[1], 10u);
}

TEST(Interpreter, MemoryOps)
{
    FunctionBuilder b("memops");
    Reg base = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.load(base, 0, 1);
    Reg two = b.constI(2);
    Reg doubled = b.mul(v, two);
    b.store(base, 1, doubled, 1);
    b.ret({doubled});
    Function f = b.finish();
    verifyOrDie(f);
    MemoryImage mem;
    mem.alloc(2);
    mem.write(0, 21);
    auto result = interpret(f, {0}, mem);
    EXPECT_EQ(result.live_outs[0], 42);
    EXPECT_EQ(mem.read(1), 42);
}

TEST(Interpreter, DivRemByZeroGuarded)
{
    FunctionBuilder b("divz");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg zero = b.constI(0);
    Reg d = b.div(x, zero);
    Reg r = b.rem(x, zero);
    Reg s = b.add(d, r);
    b.ret({s});
    Function f = b.finish();
    MemoryImage mem;
    auto result = interpret(f, {7}, mem);
    EXPECT_EQ(result.live_outs[0], 0);
}

TEST(Interpreter, StepLimitThrows)
{
    FunctionBuilder b("inf");
    BlockId head = b.newBlock("head");
    BlockId done = b.newBlock("done"); // reachable only in theory
    b.setBlock(head);
    Reg t = b.constI(1);
    b.br(t, head, done);
    b.setBlock(done);
    b.ret();
    Function f = b.finish();
    MemoryImage mem;
    EXPECT_THROW(interpret(f, {}, mem, 1000), FatalError);
}

TEST(Interpreter, RejectsCommInstrs)
{
    FunctionBuilder b("bad");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(1);
    b.func().append(bb, {.op = Opcode::Produce, .src1 = v, .queue = 0});
    b.ret();
    Function f = b.finish();
    MemoryImage mem;
    EXPECT_THROW(interpret(f, {}, mem), FatalError);
}

TEST(SyncArray, FifoOrder)
{
    SyncArray sa(4, 8);
    EXPECT_TRUE(sa.produce(2, 10));
    EXPECT_TRUE(sa.produce(2, 20));
    int64_t v;
    EXPECT_TRUE(sa.consume(2, v));
    EXPECT_EQ(v, 10);
    EXPECT_TRUE(sa.consume(2, v));
    EXPECT_EQ(v, 20);
    EXPECT_FALSE(sa.consume(2, v));
}

TEST(SyncArray, CapacityBlocksProduce)
{
    SyncArray sa(1, 2);
    EXPECT_TRUE(sa.produce(0, 1));
    EXPECT_TRUE(sa.produce(0, 2));
    EXPECT_FALSE(sa.produce(0, 3));
    EXPECT_TRUE(sa.full(0));
    int64_t v;
    sa.consume(0, v);
    EXPECT_TRUE(sa.produce(0, 3));
}

TEST(SyncArray, QueuesIndependent)
{
    SyncArray sa(2, 1);
    EXPECT_TRUE(sa.produce(0, 7));
    EXPECT_TRUE(sa.produce(1, 8));
    EXPECT_TRUE(sa.full(0));
    int64_t v;
    EXPECT_TRUE(sa.consume(1, v));
    EXPECT_EQ(v, 8);
    EXPECT_FALSE(sa.empty(0));
    EXPECT_TRUE(sa.allDrained() == false);
}

/**
 * Hand-built 2-thread producer/consumer program: thread 1 computes
 * sum(0..n-1) and produces it; thread 0 consumes and returns it.
 */
MtProgram
buildHandMtProgram()
{
    MtProgram prog;
    prog.num_queues = 1;
    prog.queue_capacity = 1;

    // Thread 0 (master): consume the sum, return it.
    {
        FunctionBuilder b("t0");
        Reg n = b.param();
        (void)n;
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg sum = b.func().newReg();
        b.func().append(bb, {.op = Opcode::Consume, .dst = sum,
                             .queue = 0});
        b.ret({sum});
        prog.threads.push_back(b.finish());
    }
    // Thread 1 (worker): compute and produce.
    {
        FunctionBuilder b("t1");
        Reg n = b.param();
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId done = b.newBlock("done");
        b.setBlock(head);
        Reg i = b.constI(0);
        Reg sum = b.constI(0);
        b.jmp(body);
        b.setBlock(body);
        b.addInto(sum, sum, i);
        Reg one = b.constI(1);
        b.addInto(i, i, one);
        Reg again = b.cmpLt(i, n);
        b.br(again, body, done);
        b.setBlock(done);
        b.func().append(done, {.op = Opcode::Produce, .src1 = sum,
                               .queue = 0});
        b.ret();
        prog.threads.push_back(b.finish());
    }
    return prog;
}

TEST(MtInterpreter, ProducerConsumer)
{
    MtProgram prog = buildHandMtProgram();
    MemoryImage mem;
    auto result = interpretMt(prog, {10}, mem);
    EXPECT_FALSE(result.deadlock);
    EXPECT_TRUE(result.queues_drained);
    ASSERT_EQ(result.live_outs.size(), 1u);
    EXPECT_EQ(result.live_outs[0], 45);
    EXPECT_EQ(result.stats[1].produces, 1u);
    EXPECT_EQ(result.stats[0].consumes, 1u);
}

TEST(MtInterpreter, RandomSchedulesAgree)
{
    MtProgram prog = buildHandMtProgram();
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        MemoryImage mem;
        auto result = interpretMt(prog, {7}, mem,
                                  SchedulePolicy::Random, seed);
        ASSERT_FALSE(result.deadlock);
        ASSERT_EQ(result.live_outs[0], 21);
    }
}

TEST(MtInterpreter, DetectsDeadlock)
{
    // Both threads consume from queues nobody fills.
    MtProgram prog;
    prog.num_queues = 2;
    prog.queue_capacity = 1;
    for (int t = 0; t < 2; ++t) {
        FunctionBuilder b("t" + std::to_string(t));
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg v = b.func().newReg();
        b.func().append(bb, {.op = Opcode::Consume, .dst = v,
                             .queue = t});
        b.ret();
        prog.threads.push_back(b.finish());
    }
    MemoryImage mem;
    auto result = interpretMt(prog, {}, mem);
    EXPECT_TRUE(result.deadlock);
}

TEST(MtInterpreter, SyncTokensCounted)
{
    MtProgram prog;
    prog.num_queues = 1;
    prog.queue_capacity = 1;
    {
        FunctionBuilder b("t0");
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        b.func().append(bb, {.op = Opcode::ConsumeSync, .queue = 0});
        b.ret();
        prog.threads.push_back(b.finish());
    }
    {
        FunctionBuilder b("t1");
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        b.func().append(bb, {.op = Opcode::ProduceSync, .queue = 0});
        b.ret();
        prog.threads.push_back(b.finish());
    }
    MemoryImage mem;
    auto result = interpretMt(prog, {}, mem);
    EXPECT_FALSE(result.deadlock);
    EXPECT_EQ(result.stats[1].produce_syncs, 1u);
    EXPECT_EQ(result.stats[0].consume_syncs, 1u);
    EXPECT_EQ(result.totalCommunication(), 2u);
}

TEST(MtInterpreter, SingleThreadDegenerate)
{
    MtProgram prog;
    prog.num_queues = 0;
    {
        FunctionBuilder b("t0");
        Reg x = b.param();
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg two = b.constI(2);
        Reg y = b.mul(x, two);
        b.ret({y});
        prog.threads.push_back(b.finish());
    }
    MemoryImage mem;
    auto result = interpretMt(prog, {21}, mem);
    EXPECT_FALSE(result.deadlock);
    EXPECT_EQ(result.live_outs[0], 42);
}

} // namespace
} // namespace gmt
