#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/stall_profile.hpp"
#include "obs/stall_report.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_writer.hpp"
#include "sim/cmp_simulator.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterGaugeBasics)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("a.count");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name, same instrument.
    reg.counter("a.count").add();
    EXPECT_EQ(c.value(), 43u);

    Gauge &g = reg.gauge("a.gauge");
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);

    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBuckets)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    h.observe(0.5); // bucket 0 (< 1)
    h.observe(1.0); // bucket 1 ([1, 2))
    h.observe(3.0); // bucket 2 ([2, 4))
    h.observe(3.5); // bucket 2
    Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.sum, 8.0);
    EXPECT_DOUBLE_EQ(s.min, 0.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 2u);
}

TEST(Metrics, SnapshotSortedByName)
{
    MetricsRegistry reg;
    reg.counter("z").add(1);
    reg.gauge("a").set(2);
    reg.histogram("m").observe(1.0);
    std::vector<MetricSample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a");
    EXPECT_EQ(snap[1].name, "m");
    EXPECT_EQ(snap[2].name, "z");
    EXPECT_EQ(snap[0].kind, MetricSample::Kind::Gauge);
    EXPECT_EQ(snap[1].kind, MetricSample::Kind::Histogram);
    EXPECT_EQ(snap[2].kind, MetricSample::Kind::Counter);
}

TEST(Metrics, JsonlRecords)
{
    MetricsRegistry reg;
    reg.counter("sim.runs").add(3);
    reg.histogram("pass_ms").observe(2.5);

    std::ostringstream os;
    StatsSink sink(os);
    writeMetricsRecords(reg, sink);
    EXPECT_EQ(sink.recordsWritten(), 2u);

    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    // Fixed key order: schema first, then type.
    EXPECT_EQ(line.rfind("{\"schema\":1,\"type\":\"metrics\"", 0), 0u);
    EXPECT_NE(line.find("\"name\":\"pass_ms\""), std::string::npos);
    EXPECT_NE(line.find("\"kind\":\"histogram\""), std::string::npos);
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"name\":\"sim.runs\""), std::string::npos);
    EXPECT_NE(line.find("\"value\":3"), std::string::npos);
}

TEST(Metrics, HistogramMomentsAreGuarded)
{
    // Empty histograms and single-sample spreads must serialize as
    // plain zeros — never NaN (which JSON cannot carry) or null.
    MetricsRegistry reg;
    reg.histogram("empty");
    reg.histogram("one").observe(5.0);
    reg.histogram("two").observe(1.0);
    reg.histogram("two").observe(3.0);

    std::ostringstream os;
    StatsSink sink(os);
    writeMetricsRecords(reg, sink);

    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // "empty"
    EXPECT_NE(line.find("\"count\":0"), std::string::npos);
    EXPECT_NE(line.find("\"mean\":0"), std::string::npos);
    EXPECT_NE(line.find("\"stddev\":0"), std::string::npos);
    EXPECT_NE(line.find("\"min\":0"), std::string::npos);
    EXPECT_EQ(line.find("nan"), std::string::npos);
    EXPECT_EQ(line.find("null"), std::string::npos);

    ASSERT_TRUE(std::getline(in, line)); // "one"
    EXPECT_NE(line.find("\"mean\":5"), std::string::npos);
    EXPECT_NE(line.find("\"stddev\":0"), std::string::npos);
    EXPECT_EQ(line.find("nan"), std::string::npos);

    ASSERT_TRUE(std::getline(in, line)); // "two"
    EXPECT_NE(line.find("\"mean\":2"), std::string::npos);
    EXPECT_NE(line.find("\"stddev\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace writer: the output must be valid JSON in the Chrome
// trace-event Object Format. A tiny recursive-descent parser keeps
// the check honest (substring checks can't catch broken nesting).

struct JsonCursor
{
    const std::string &s;
    size_t i = 0;

    void ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n' ||
                                s[i] == '\r' || s[i] == '\t'))
            ++i;
    }

    bool lit(const char *t)
    {
        size_t n = std::string(t).size();
        if (s.compare(i, n, t) != 0)
            return false;
        i += n;
        return true;
    }

    bool string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }

    bool value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return lit("true");
        case 'f': return lit("false");
        case 'n': return lit("null");
        default: return number();
        }
    }

    bool object()
    {
        if (!lit("{"))
            return false;
        ws();
        if (lit("}"))
            return true;
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (!lit(":"))
                return false;
            if (!value())
                return false;
            ws();
            if (lit("}"))
                return true;
            if (!lit(","))
                return false;
        }
    }

    bool array()
    {
        if (!lit("["))
            return false;
        ws();
        if (lit("]"))
            return true;
        for (;;) {
            if (!value())
                return false;
            ws();
            if (lit("]"))
                return true;
            if (!lit(","))
                return false;
        }
    }
};

bool
isValidJson(const std::string &s)
{
    JsonCursor c{s};
    if (!c.value())
        return false;
    c.ws();
    return c.i == s.size();
}

TEST(TraceWriter, WellFormedChromeTrace)
{
    TraceCollector tc;
    int pid = tc.registerProcess("sim test\"quoted\"");
    tc.nameThread(pid, 0, "core 0");
    tc.completeEvent("compute", "sim", pid, 0, 0.0, 10.0);
    tc.completeEvent("queue-empty\n", "sim", pid, 0, 10.0, 2.5,
                     {{"cell", "ks/DSWP"}}, {{"cached", 1}});
    tc.counterEvent("queue 0", pid, 3.0, "occupancy", 17);
    tc.laneForThisThread();

    std::string json = tc.json();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    // The raw quote and newline were escaped.
    EXPECT_NE(json.find("sim test\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("queue-empty\\n"), std::string::npos);
    // 2 complete + 1 counter + process_name + thread_name + the
    // lane's thread_name metadata.
    EXPECT_EQ(tc.numEvents(), 6u);
}

TEST(TraceWriter, EmptyCollectorIsStillValid)
{
    TraceCollector tc;
    EXPECT_TRUE(isValidJson(tc.json()));
    EXPECT_EQ(tc.numEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Stall attribution: conservation + engine equivalence over the full
// benchmark matrix. This is the tentpole invariant: every stall cycle
// the simulator charges anywhere must be charged exactly once, on
// both engines, and the two engines' attributions must be
// bit-identical (same architectural events, same charges).

MemoryImage
refMemory(const Workload &w)
{
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, /*ref=*/true);
    return mem;
}

struct ProfiledRun
{
    SimResult result;
    SimProfile profile;
    SimTimeline timeline;
};

ProfiledRun
runProfiled(const MtProgram &prog, const std::vector<int64_t> &args,
            MemoryImage mem, const MachineConfig &m, SimEngine e)
{
    ProfiledRun out;
    CmpSimulator sim(m, e);
    TimelineBuilder tb;
    sim.setProfile(&out.profile);
    sim.setTimeline(&tb);
    out.result = sim.run(prog, args, mem);
    out.timeline = tb.take();
    return out;
}

TEST(StallConservation, FullMatrixBothEngines)
{
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                PipelineContext ctx(w, po);
                PassManager::codegenPipeline().run(ctx);
                SCOPED_TRACE(ctx.cellId());

                const MachineConfig &m = po.machine;
                ProfiledRun fast =
                    runProfiled(ctx.prog->prog, w.ref_args,
                                refMemory(w), m, SimEngine::Fast);
                ProfiledRun ref =
                    runProfiled(ctx.prog->prog, w.ref_args,
                                refMemory(w), m, SimEngine::Reference);

                // Conservation: attributed cycles sum exactly to the
                // independently maintained aggregate counters.
                EXPECT_EQ(checkStallConservation(
                              fast.profile, stallTotals(fast.result)),
                          "");
                EXPECT_EQ(checkStallConservation(
                              ref.profile, stallTotals(ref.result)),
                          "");

                // Differential: both engines attribute identically.
                EXPECT_TRUE(fast.result == ref.result);
                EXPECT_TRUE(fast.profile == ref.profile);
                EXPECT_TRUE(fast.timeline == ref.timeline);

                // Timeline sanity: per-core intervals are ordered,
                // disjoint, and within the run.
                for (const auto &lane : fast.timeline.core) {
                    uint64_t prev = 0;
                    for (const CoreInterval &iv : lane) {
                        EXPECT_LE(prev, iv.begin);
                        EXPECT_LT(iv.begin, iv.end);
                        EXPECT_LE(iv.end, fast.result.cycles);
                        prev = iv.end;
                    }
                }

                // The report rollup preserves the totals.
                StallReport report = buildStallReport(
                    fast.profile, fast.result.cycles, ctx.plan->plan,
                    ctx.prog->queue_of, ctx.prog->prog);
                uint64_t block_total = 0;
                for (const auto &core : fast.profile.blocks)
                    for (const BlockStallProf &b : core)
                        block_total += b.total();
                EXPECT_EQ(report.totalStallCycles(), block_total);
                for (size_t i = 1; i < report.queues.size(); ++i)
                    EXPECT_GE(report.queues[i - 1].prof.stallCycles(),
                              report.queues[i].prof.stallCycles());
                for (size_t i = 1; i < report.blocks.size(); ++i)
                    EXPECT_GE(report.blocks[i - 1].prof.total(),
                              report.blocks[i].prof.total());
            }
        }
    }
}

TEST(StallConservation, DetectsLostCycle)
{
    SimProfile p;
    p.init({2}, 1);
    p.chargeOperand(0, 1, 10);
    std::vector<CoreStallTotals> agg(1);
    agg[0].operand = 10;
    EXPECT_EQ(checkStallConservation(p, agg), "");
    agg[0].operand = 11; // one cycle the attribution never charged
    EXPECT_NE(checkStallConservation(p, agg), "");
}

// ---------------------------------------------------------------------------
// The obs-profile pass.

TEST(ObsPass, ProducesSimulatedArtifact)
{
    Workload w = allWorkloads().front();
    PipelineOptions po;
    po.profile_stalls = true;
    PipelineContext ctx(w, po);
    PassManager::standardPipeline().run(ctx);

    ASSERT_TRUE(ctx.obs);
    EXPECT_TRUE(ctx.obs->simulated);
    EXPECT_EQ(ctx.obs->report.cycles, ctx.result.mt_cycles);
    EXPECT_EQ(ctx.obs->computation, ctx.result.computation);
    EXPECT_EQ(ctx.obs->reg_comm, ctx.result.reg_comm);
    EXPECT_FALSE(ctx.obs->report.threads.empty());
    EXPECT_FALSE(ctx.obs->timeline.core.empty());
}

TEST(ObsPass, CountsOnlyWhenNotSimulating)
{
    Workload w = allWorkloads().front();
    PipelineOptions po;
    po.profile_stalls = true;
    po.simulate = false;
    PipelineContext ctx(w, po);
    PassManager::standardPipeline().run(ctx);

    ASSERT_TRUE(ctx.obs);
    EXPECT_FALSE(ctx.obs->simulated);
    EXPECT_TRUE(ctx.obs->report.queues.empty());
    EXPECT_GT(ctx.obs->computation, 0u);
}

TEST(ObsPass, SkippedWithoutOptIn)
{
    Workload w = allWorkloads().front();
    PipelineOptions po;
    PipelineContext ctx(w, po);
    PassManager::standardPipeline().run(ctx);
    EXPECT_FALSE(ctx.obs);
}

TEST(ObsPass, TraceCollectorForcesProfileAndEmitsLanes)
{
    Workload w = allWorkloads().front();
    PipelineOptions po;
    TraceCollector tc;
    PipelineContext ctx(w, po);
    ctx.trace = &tc;
    PassManager::standardPipeline().run(ctx);

    ASSERT_TRUE(ctx.obs);
    EXPECT_TRUE(ctx.obs->simulated);
    EXPECT_GT(tc.numEvents(), 0u);
    std::string json = tc.json();
    EXPECT_TRUE(isValidJson(json));
    // Pass spans on the pipeline track and sim lanes for the cell.
    EXPECT_NE(json.find("\"name\":\"mtcg\""), std::string::npos);
    EXPECT_NE(json.find("sim " + ctx.cellId()), std::string::npos);
    EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
}

} // namespace
} // namespace gmt
