#include <gtest/gtest.h>

#include <set>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "equiv.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "mtcg/queue_alloc.hpp"
#include "pdg/pdg_builder.hpp"
#include "support/error.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

CommPlan
makePlan(int placements, int num_threads)
{
    CommPlan plan;
    for (int i = 0; i < placements; ++i) {
        CommPlacement pl;
        pl.kind = CommKind::RegisterData;
        pl.reg = i;
        pl.src_thread = i % num_threads;
        pl.dst_thread = (i + 1) % num_threads;
        pl.points = {{0, 0}};
        plan.placements.push_back(pl);
    }
    return plan;
}

TEST(QueueAlloc, IdentityWhenBudgetAmple)
{
    CommPlan plan = makePlan(6, 2);
    auto alloc = allocateQueues(plan, 64);
    EXPECT_LE(alloc.num_queues, 64);
    // Each placement got a queue; queues of one pair are distinct
    // when the budget allows it.
    for (int q : alloc.queue_of)
        EXPECT_GE(q, 0);
}

TEST(QueueAlloc, SharesWithinPairsWhenTight)
{
    CommPlan plan = makePlan(20, 2); // pairs (0->1) and (1->0)
    auto alloc = allocateQueues(plan, 4);
    EXPECT_LE(alloc.num_queues, 4);
    // Placements of different ordered pairs never share a queue.
    std::set<int> q01, q10;
    for (size_t i = 0; i < plan.placements.size(); ++i) {
        if (plan.placements[i].src_thread == 0)
            q01.insert(alloc.queue_of[i]);
        else
            q10.insert(alloc.queue_of[i]);
    }
    for (int q : q01)
        EXPECT_EQ(q10.count(q), 0u);
}

TEST(QueueAlloc, FailsBelowPairCount)
{
    CommPlan plan = makePlan(8, 4); // 4 ordered pairs
    EXPECT_THROW(allocateQueues(plan, 3), FatalError);
}

TEST(QueueAlloc, EmptyPlan)
{
    CommPlan plan;
    auto alloc = allocateQueues(plan, 16);
    EXPECT_EQ(alloc.num_queues, 0);
}

// The decisive test: generated code multiplexed onto a tiny queue
// budget must stay observationally equivalent and deadlock-free for
// many random programs, partitions, and schedules.
class QueueAllocProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(QueueAllocProperty, EquivalentUnderTinyBudgets)
{
    const int max_queues = GetParam();
    Rng rng(66000 + max_queues);
    for (int trial = 0; trial < 15; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        splitCriticalEdges(f);
        verifyOrDie(f);
        Pdg pdg = buildPdg(f);
        auto pdom = DominatorTree::postDominators(f);
        ControlDependence cd(f, pdom);
        ThreadPartition p;
        p.num_threads = 2;
        p.assign.resize(f.numInstrs());
        for (auto &x : p.assign)
            x = static_cast<int>(rng.nextBelow(2));
        CommPlan plan = defaultMtcgPlan(f, pdg, p, cd);

        MtcgOptions opts;
        opts.queue_capacity = 1; // worst case for backpressure
        opts.max_queues = max_queues;
        MtProgram prog = runMtcg(f, pdg, p, plan, cd, opts);
        EXPECT_LE(prog.num_queues, max_queues);

        for (uint64_t seed = 0; seed < 3; ++seed) {
            auto out = checkEquivalence(
                f, prog, {3, -7}, gen.array_cells, nullptr,
                seed == 0 ? SchedulePolicy::RoundRobin
                          : SchedulePolicy::Random,
                seed);
            ASSERT_TRUE(out.ok)
                << out.detail << " trial=" << trial
                << " budget=" << max_queues << " seed=" << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, QueueAllocProperty,
                         ::testing::Values(2, 4, 8, 256),
                         [](const auto &info) {
                             return "q" + std::to_string(info.param);
                         });

} // namespace
} // namespace gmt
