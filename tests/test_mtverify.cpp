#include <gtest/gtest.h>

#include <memory>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "coco/validate.hpp"
#include "driver/pass_manager.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "mtverify/mtverify.hpp"
#include "pdg/pdg_builder.hpp"
#include "workloads/generate.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

// ---------------------------------------------------------------------
// Harness: build a full (function, pdg, partition, plan, program) cell
// with stable addresses, then let each test mutate the emitted program
// (or the witness) and assert which diagnostic code trips.
// ---------------------------------------------------------------------

struct Cell
{
    std::unique_ptr<Function> f;
    std::unique_ptr<Pdg> pdg;
    ThreadPartition part;
    CommPlan plan;
    MtProgram prog;

    MtVerifyInput
    input() const
    {
        return {.orig = f.get(),
                .pdg = pdg.get(),
                .partition = &part,
                .plan = &plan,
                .queue_of = nullptr,
                .prog = &prog};
    }

    MtVerifyResult verify() const { return verifyMtProgram(input()); }
};

Cell
makeCell(Function fin, ThreadPartition part, int queue_capacity = 32)
{
    Cell c;
    c.f = std::make_unique<Function>(std::move(fin));
    verifyOrDie(*c.f);
    c.pdg = std::make_unique<Pdg>(buildPdg(*c.f));
    auto pdom = DominatorTree::postDominators(*c.f);
    ControlDependence cd(*c.f, pdom);
    c.part = std::move(part);
    c.plan = defaultMtcgPlan(*c.f, *c.pdg, c.part, cd);
    c.prog = runMtcg(*c.f, *c.pdg, c.part, c.plan, cd,
                     {.queue_capacity = queue_capacity});
    return c;
}

bool
hasCode(const MtVerifyResult &r, MtvCode code)
{
    for (const MtvDiag &d : r.diags)
        if (d.code == code)
            return true;
    return false;
}

/** First instruction in @p f's block lists matching @p pred. */
struct Found
{
    BlockId block = kNoBlock;
    int pos = -1;
    InstrId id = kNoInstr;
};

template <typename Pred>
Found
findInstr(const Function &f, Pred pred)
{
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &list = f.block(b).instrs();
        for (int p = 0; p < static_cast<int>(list.size()); ++p)
            if (pred(f.instr(list[p])))
                return {b, p, list[p]};
    }
    return {};
}

void
eraseAt(Function &f, Found at)
{
    ASSERT_NE(at.id, kNoInstr);
    auto &list = f.block(at.block).instrs();
    list.erase(list.begin() + at.pos);
}

// ---------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------

/** Straight line, two one-way queues: t0 defines a = x + 1 and
 *  c = x * x; t1 computes a + c and returns it. */
Cell
twoProducerCell()
{
    FunctionBuilder b("twoprod");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg a = b.addImm(x, 1); // Const + Add
    Reg c = b.mul(x, x);
    Reg s = b.add(a, c);
    b.ret({s});
    Function f = b.finish();

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 1);
    const auto &il = f.block(bb).instrs();
    p.assign[il[0]] = 0; // Const 1
    p.assign[il[1]] = 0; // a = x + 1
    p.assign[il[2]] = 0; // c = x * x
    return makeCell(std::move(f), std::move(p));
}

/** Bidirectional pipeline: t0 sends a to t1, t1 sends m = a * a back,
 *  t0 returns m + x. The produce and consume are adjacent in t0. */
Cell
bidirectionalCell()
{
    FunctionBuilder b("bidir");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg a = b.addImm(x, 1);
    Reg m = b.mul(a, a);
    Reg d = b.add(m, x);
    b.ret({d});
    Function f = b.finish();

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    p.assign[f.block(bb).instrs()[2]] = 1; // m = a * a
    return makeCell(std::move(f), std::move(p));
}

/** Cross-thread memory dependence: t0 stores, t1 loads the same alias
 *  class, so the plan carries exactly one memory-sync placement. */
Cell
memorySyncCell()
{
    FunctionBuilder b("memsync");
    Reg x = b.param(); // address
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(7);
    b.store(x, 0, v, 1);
    Reg w = b.load(x, 0, 1);
    Reg s = b.addImm(w, 1);
    b.ret({s});
    Function f = b.finish();

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 1);
    const auto &il = f.block(bb).instrs();
    p.assign[il[0]] = 0; // Const 7
    p.assign[il[1]] = 0; // Store
    return makeCell(std::move(f), std::move(p));
}

/** r defined under a branch in t0, used by t1: t1 replicates the
 *  branch and consumes r at two points (one per reaching def). */
Cell
conditionalCell()
{
    FunctionBuilder b("cond");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId then_b = b.newBlock("then");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg r = b.constI(10);
    b.br(c, then_b, join);
    b.setBlock(then_b);
    b.constInto(r, 20);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.addImm(r, 1);
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    for (InstrId i : f.block(join).instrs())
        p.assign[i] = 1;
    return makeCell(std::move(f), std::move(p));
}

/** Branch and both its dependents stay in t0; t1 owns only the
 *  control-independent join. No communication at all. */
Cell
controlFreeCell()
{
    FunctionBuilder b("ctrlfree");
    Reg c = b.param();
    Reg x = b.param();
    BlockId top = b.newBlock("top");
    BlockId then_b = b.newBlock("then");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    b.br(c, then_b, join);
    b.setBlock(then_b);
    (void)b.constI(20); // t0-only work under the branch
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.addImm(x, 1);
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    for (InstrId i : f.block(join).instrs())
        p.assign[i] = 1;
    return makeCell(std::move(f), std::move(p));
}

// ---------------------------------------------------------------------
// Clean runs: correct emission verifies with zero findings.
// ---------------------------------------------------------------------

TEST(MtVerifyClean, StraightLineTwoQueues)
{
    auto res = twoProducerCell().verify();
    EXPECT_TRUE(res.diags.empty()) << res.render();
}

TEST(MtVerifyClean, BidirectionalPipeline)
{
    auto res = bidirectionalCell().verify();
    EXPECT_TRUE(res.diags.empty()) << res.render();
}

TEST(MtVerifyClean, MemorySynchronization)
{
    auto res = memorySyncCell().verify();
    EXPECT_TRUE(res.diags.empty()) << res.render();
}

TEST(MtVerifyClean, ConditionalWithDuplicatedBranch)
{
    auto res = conditionalCell().verify();
    EXPECT_TRUE(res.diags.empty()) << res.render();
}

/** Every figure cell — 11 workloads x {DSWP, GREMIO} x {default,
 *  COCO} — must verify clean, exactly as the verify-mt pass and
 *  gmt-lint demand. */
TEST(MtVerifyClean, AllWorkloadCells)
{
    int hb_pairs = 0;
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                po.simulate = false;
                po.verify_mt = false; // run the verifier ourselves
                PipelineContext ctx(w, po);
                PassManager::codegenPipeline().run(ctx);
                auto res = verifyMtProgram(
                    {.orig = &ctx.ir->func,
                     .pdg = &ctx.pdg->pdg,
                     .partition = &ctx.partition->partition,
                     .plan = &ctx.plan->plan,
                     .queue_of = &ctx.prog->queue_of,
                     .prog = &ctx.prog->prog});
                EXPECT_TRUE(res.diags.empty())
                    << ctx.cellId() << "\n"
                    << res.render();
                hb_pairs += res.hb_pairs;
            }
        }
    }
    // The matrix must actually exercise the happens-before engine:
    // some cells carry cross-thread memory deps, each proven ordered.
    EXPECT_GT(hb_pairs, 0);
}

/** Queue multiplexing changes the witness (queue_of) but must still
 *  verify clean. */
TEST(MtVerifyClean, MultiplexedQueues)
{
    auto all = allWorkloads();
    for (size_t wi = 0; wi < 3 && wi < all.size(); ++wi) {
        PipelineOptions po;
        po.max_queues = 4;
        po.simulate = false;
        po.verify_mt = false;
        PipelineContext ctx(all[wi], po);
        PassManager::codegenPipeline().run(ctx);
        auto res = verifyMtProgram(
            {.orig = &ctx.ir->func,
             .pdg = &ctx.pdg->pdg,
             .partition = &ctx.partition->partition,
             .plan = &ctx.plan->plan,
             .queue_of = &ctx.prog->queue_of,
             .prog = &ctx.prog->prog});
        EXPECT_TRUE(res.diags.empty())
            << ctx.cellId() << "\n"
            << res.render();
    }
}

// ---------------------------------------------------------------------
// Mutation harness: each injected bug class must trip its specific
// diagnostic code.
// ---------------------------------------------------------------------

TEST(MtVerifyMutation, DroppedProduce)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    eraseAt(t0, findInstr(t0, [](const Instr &i) {
                return i.op == Opcode::Produce;
            }));
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::MissingProduce)) << res.render();
    // The queue also ends imbalanced: one consume, zero produces.
    EXPECT_TRUE(hasCode(res, MtvCode::QueueImbalance)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, DroppedConsume)
{
    Cell cell = twoProducerCell();
    Function &t1 = cell.prog.threads[1];
    eraseAt(t1, findInstr(t1, [](const Instr &i) {
                return i.op == Opcode::Consume;
            }));
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::MissingConsume)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, SwappedQueueIds)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    // Swap the queue fields of t0's two produces.
    std::vector<InstrId> prods;
    for (InstrId i : t0.block(0).instrs())
        if (t0.instr(i).op == Opcode::Produce)
            prods.push_back(i);
    ASSERT_EQ(prods.size(), 2u);
    std::swap(t0.instr(prods[0]).queue, t0.instr(prods[1]).queue);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::QueueMismatch)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, ConsumeReorderedBeforeProduceDeadlocks)
{
    Cell cell = bidirectionalCell();
    Function &t0 = cell.prog.threads[0];
    // t0 emits produce(a) immediately before consume(m). Swapping them
    // makes t0 wait on t1's reply before sending the request: a
    // classic cross-thread wait-for cycle.
    Found pr = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Produce;
    });
    Found co = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Consume;
    });
    ASSERT_NE(pr.id, kNoInstr);
    ASSERT_NE(co.id, kNoInstr);
    ASSERT_EQ(pr.block, co.block);
    auto &list = t0.block(pr.block).instrs();
    std::swap(list[pr.pos], list[co.pos]);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::DeadlockCycle)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, DroppedMemorySyncToken)
{
    Cell cell = memorySyncCell();
    Function &t0 = cell.prog.threads[0];
    eraseAt(t0, findInstr(t0, [](const Instr &i) {
                return i.op == Opcode::ProduceSync;
            }));
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::MissingSyncToken))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, SyncTokenDemotedToData)
{
    Cell cell = memorySyncCell();
    Function &t0 = cell.prog.threads[0];
    Found ps = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::ProduceSync;
    });
    ASSERT_NE(ps.id, kNoInstr);
    t0.instr(ps.id).op = Opcode::Produce;
    t0.instr(ps.id).src1 = 0; // any valid register
    auto res = cell.verify();
    // Emission disagrees with the plan's kind at that point...
    EXPECT_TRUE(hasCode(res, MtvCode::CommKindMismatch))
        << res.render();
    // ...and the endpoints disagree data-vs-sync on the matched token.
    EXPECT_TRUE(hasCode(res, MtvCode::TokenKindMismatch))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, ProduceCarriesWrongRegister)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found pr = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Produce;
    });
    ASSERT_NE(pr.id, kNoInstr);
    t0.instr(pr.id).src1 = 0; // the parameter, not the planned reg
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::RegMismatch)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, ExtraUnjustifiedComm)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found pr = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Produce;
    });
    ASSERT_NE(pr.id, kNoInstr);
    Instr dup = t0.instr(pr.id);
    t0.insertAt(pr.block, pr.pos + 1, dup);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::ExtraComm)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, QueueIdOutOfRange)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found pr = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Produce;
    });
    ASSERT_NE(pr.id, kNoInstr);
    t0.instr(pr.id).queue = 99;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::BadQueueId)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, QueueEndpointRolesConflict)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found pr = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Produce;
    });
    ASSERT_NE(pr.id, kNoInstr);
    // Turn one of t0's produces into a consume: its queue now has
    // consumers in both threads.
    Instr &in = t0.instr(pr.id);
    in.op = Opcode::Consume;
    in.dst = in.src1;
    in.src1 = kNoReg;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::QueueEndpointConflict))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, ProduceMissingOnOnePath)
{
    Cell cell = conditionalCell();
    Function &t0 = cell.prog.threads[0];
    // The then-block image (terminated by a Jmp) carries the produce
    // for the conditional redefinition; dropping it leaves the queue's
    // token count path-dependent at the join.
    Found pr{};
    for (BlockId b = 0; b < t0.numBlocks() && pr.id == kNoInstr; ++b) {
        InstrId term = t0.block(b).terminator();
        if (term == kNoInstr || t0.instr(term).op != Opcode::Jmp)
            continue;
        const auto &list = t0.block(b).instrs();
        for (int p = 0; p < static_cast<int>(list.size()); ++p)
            if (t0.instr(list[p]).op == Opcode::Produce)
                pr = {b, p, list[p]};
    }
    eraseAt(t0, pr);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::QueueImbalance)) << res.render();
    EXPECT_TRUE(hasCode(res, MtvCode::MissingProduce)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, OwnedInstructionNotCopied)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    eraseAt(t0, findInstr(t0, [](const Instr &i) {
                return i.op == Opcode::Mul;
            }));
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::MissingInstr)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, CopyOperandsMangled)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found mul = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Mul;
    });
    ASSERT_NE(mul.id, kNoInstr);
    Instr &in = t0.instr(mul.id);
    ASSERT_NE(in.src2 + 1, in.src1);
    in.src2 = in.src2 + 1; // a different (valid) register
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::MangledInstr)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, CopyWithoutOrigin)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found mul = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Mul;
    });
    ASSERT_NE(mul.id, kNoInstr);
    t0.instr(mul.id).origin = kNoInstr;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::OrphanInstr)) << res.render();
    // The owned original now has no copy either.
    EXPECT_TRUE(hasCode(res, MtvCode::MissingInstr)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, CopyHoistedIntoWrongBlock)
{
    Cell cell = conditionalCell();
    Function &t0 = cell.prog.threads[0];
    // Move the then-block's redefinition copy into the entry block's
    // image (above the branch), keeping the CFG structurally valid.
    Found c = findInstr(t0, [&](const Instr &i) {
        return i.op == Opcode::Const && i.origin != kNoInstr &&
               cell.f->instr(i.origin).block != cell.f->entry();
    });
    ASSERT_NE(c.id, kNoInstr);
    auto &from = t0.block(c.block).instrs();
    from.erase(from.begin() + c.pos);
    BlockId entry = t0.entry();
    auto &to = t0.block(entry).instrs();
    to.insert(to.begin(), c.id);
    t0.instr(c.id).block = entry;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::InstrWrongBlock))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, NonRetThreadDeclaresLiveOuts)
{
    Cell cell = twoProducerCell();
    cell.prog.threads[0].setLiveOuts({0}); // t1 owns the Ret
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::InterfaceMismatch))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, DuplicatedFlagClearedIsWarning)
{
    Cell cell = conditionalCell();
    Function &t1 = cell.prog.threads[1];
    Found br = findInstr(t1, [](const Instr &i) {
        return i.op == Opcode::Br;
    });
    ASSERT_NE(br.id, kNoInstr);
    ASSERT_TRUE(t1.instr(br.id).duplicated);
    t1.instr(br.id).duplicated = false;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::DupFlagWrong)) << res.render();
    // Stats hygiene only: still semantically correct code.
    EXPECT_TRUE(res.ok()) << res.render();
    EXPECT_GE(res.warnings(), 1);
}

TEST(MtVerifyMutation, TerminatorOriginLost)
{
    Cell cell = twoProducerCell();
    Function &t1 = cell.prog.threads[1];
    InstrId term = t1.block(t1.entry()).terminator();
    ASSERT_NE(term, kNoInstr);
    t1.instr(term).origin = kNoInstr;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::BlockMapBroken)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, StructurallyInvalidThread)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    Found mul = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Mul;
    });
    ASSERT_NE(mul.id, kNoInstr);
    t0.instr(mul.id).dst = t0.numRegs() + 5;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::Structural)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, IntraThreadCopiesReordered)
{
    Cell cell = twoProducerCell();
    Function &t0 = cell.prog.threads[0];
    // The Const feeding a = x + 1 must stay before the Add.
    Found k = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Const;
    });
    Found add = findInstr(t0, [](const Instr &i) {
        return i.op == Opcode::Add;
    });
    ASSERT_NE(k.id, kNoInstr);
    ASSERT_NE(add.id, kNoInstr);
    ASSERT_EQ(k.block, add.block);
    auto &list = t0.block(k.block).instrs();
    std::swap(list[k.pos], list[add.pos]);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::DepIntraThreadOrder))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, ControlArcWithoutBranchCopy)
{
    Cell cell = controlFreeCell();
    ASSERT_TRUE(cell.verify().diags.empty());
    // Pretend the join's add is control-dependent on the branch: t1
    // would then need a copy of it, which it does not have.
    InstrId br = cell.f->block(cell.f->entry()).terminator();
    ASSERT_TRUE(cell.f->instr(br).isBranch());
    InstrId victim = kNoInstr;
    for (InstrId i = 0; i < cell.f->numInstrs(); ++i)
        if (cell.f->instr(i).op == Opcode::Add &&
            cell.part.threadOf(i) == 1)
            victim = i;
    ASSERT_NE(victim, kNoInstr);
    cell.pdg->addArc(
        {.src = br, .dst = victim, .kind = DepKind::Control});
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::ControlUncovered))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyMutation, PlanWitnessLosesItsPoints)
{
    Cell cell = twoProducerCell();
    // Clearing a placement's points makes the cross-thread arc
    // uncovered (and the still-emitted comm unjustified).
    ASSERT_FALSE(cell.plan.placements.empty());
    cell.plan.placements[0].points.clear();
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::DepUncovered)) << res.render();
    EXPECT_TRUE(hasCode(res, MtvCode::ExtraComm)) << res.render();
    EXPECT_FALSE(res.ok());
}

// ---------------------------------------------------------------------
// Theorem 4: happens-before race freedom (hb.hpp). One injected bug
// per code, plus clean runs over generated workloads.
// ---------------------------------------------------------------------

TEST(MtVerifyHb, DroppedSyncProduceIsDataRace)
{
    Cell cell = memorySyncCell();
    ASSERT_TRUE(cell.verify().diags.empty());
    // Without the produce.sync the store and the cross-thread load
    // share no sync chain at all: a data race, not just a plan
    //-fidelity gap.
    Function &t0 = cell.prog.threads[0];
    eraseAt(t0, findInstr(t0, [](const Instr &i) {
                return i.op == Opcode::ProduceSync;
            }));
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::HbDataRace)) << res.render();
    EXPECT_FALSE(hasCode(res, MtvCode::HbSyncWrongPath))
        << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyHb, ConsumeMovedPastLoadIsSyncWrongPath)
{
    Cell cell = memorySyncCell();
    // The sync chain still exists (produce.sync matches
    // consume.sync), but the load now retires before the token
    // arrives, so the chain no longer orders the conflicting pair.
    Function &t1 = cell.prog.threads[1];
    Found cs = findInstr(t1, [](const Instr &i) {
        return i.op == Opcode::ConsumeSync;
    });
    Found ld = findInstr(t1, [](const Instr &i) {
        return i.op == Opcode::Load;
    });
    ASSERT_NE(cs.id, kNoInstr);
    ASSERT_NE(ld.id, kNoInstr);
    ASSERT_EQ(cs.block, ld.block);
    ASSERT_LT(cs.pos, ld.pos);
    auto &list = t1.block(cs.block).instrs();
    std::swap(list[cs.pos], list[ld.pos]);
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::HbSyncWrongPath))
        << res.render();
    EXPECT_FALSE(hasCode(res, MtvCode::HbDataRace)) << res.render();
    EXPECT_FALSE(res.ok());
}

TEST(MtVerifyHb, SyncOrderingNothingIsRedundantWarning)
{
    Cell cell = twoProducerCell();
    // Graft a memory-sync placement onto a cell with no memory
    // operations at all, and emit its token pair faithfully: every
    // theorem holds, but the sync orders nothing.
    BlockId bb = cell.f->entry();
    int pi = static_cast<int>(cell.plan.placements.size());
    cell.plan.placements.push_back({.kind = CommKind::MemorySync,
                                    .src_thread = 0,
                                    .dst_thread = 1,
                                    .points = {{bb, 0}}});
    Function &t0 = cell.prog.threads[0];
    Function &t1 = cell.prog.threads[1];
    t0.insertAt(t0.entry(), 0,
                {.op = Opcode::ProduceSync,
                 .queue = static_cast<QueueId>(pi)});
    t1.insertAt(t1.entry(), 0,
                {.op = Opcode::ConsumeSync,
                 .queue = static_cast<QueueId>(pi)});
    cell.prog.num_queues = pi + 1;
    auto res = cell.verify();
    EXPECT_TRUE(hasCode(res, MtvCode::HbRedundantSync))
        << res.render();
    EXPECT_TRUE(res.ok()) << res.render(); // warning, not error
    EXPECT_EQ(res.errors(), 0);
}

TEST(MtVerifyHb, SkippableViaCheckHbFlag)
{
    Cell cell = memorySyncCell();
    Function &t0 = cell.prog.threads[0];
    eraseAt(t0, findInstr(t0, [](const Instr &i) {
                return i.op == Opcode::ProduceSync;
            }));
    MtVerifyInput in = cell.input();
    in.check_hb = false;
    auto res = verifyMtProgram(in);
    EXPECT_FALSE(hasCode(res, MtvCode::HbDataRace)) << res.render();
    EXPECT_EQ(res.hb_pairs, 0);
    // The plan-fidelity gap is still an error either way.
    EXPECT_FALSE(res.ok());
}

/** Generated workloads, both schedulers: zero HB findings. (Both
 *  partitioners keep loop-carried alias classes in one thread, so
 *  these cells mostly discharge trivially; the built-in workload
 *  matrix above is what exercises nonzero proof obligations.) */
TEST(MtVerifyHb, GeneratedCorpusRaceFree)
{
    for (uint64_t seed : {11u, 23u, 47u}) {
        Workload w = generateWorkload(seed);
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.simulate = false;
            po.verify_mt = false; // run the verifier ourselves
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);
            auto res = verifyMtProgram(
                {.orig = &ctx.ir->func,
                 .pdg = &ctx.pdg->pdg,
                 .partition = &ctx.partition->partition,
                 .plan = &ctx.plan->plan,
                 .queue_of = &ctx.prog->queue_of,
                 .prog = &ctx.prog->prog});
            EXPECT_TRUE(res.diags.empty())
                << ctx.cellId() << "\n"
                << res.render();
        }
    }
}

// ---------------------------------------------------------------------
// Plan-validation diagnostics (coco/validate.cpp shares the code
// space) and diag utilities.
// ---------------------------------------------------------------------

TEST(MtVerifyPlan, InvalidPointAndUncoveredArcCodes)
{
    Cell cell = twoProducerCell();
    auto pdom = DominatorTree::postDominators(*cell.f);
    ControlDependence cd(*cell.f, pdom);

    CommPlan bad = cell.plan;
    ASSERT_FALSE(bad.placements.empty());
    bad.placements[0].points = {{0, 999}};
    auto diags =
        validatePlanDiags(*cell.f, *cell.pdg, cell.part, cd, bad);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].code, MtvCode::PlanInvalidPoint);

    CommPlan uncovered = cell.plan;
    uncovered.placements[0].points.clear();
    diags = validatePlanDiags(*cell.f, *cell.pdg, cell.part, cd,
                              uncovered);
    bool found = false;
    for (const MtvDiag &d : diags)
        found |= d.code == MtvCode::PlanUncoveredArc;
    EXPECT_TRUE(found);
}

TEST(MtVerifyDiag, RenderAndDedupe)
{
    MtvDiag d{.code = MtvCode::DepUncovered,
              .thread = 1,
              .block = 3,
              .pos = 2,
              .instr = 17,
              .queue = 5,
              .message = "msg"};
    EXPECT_EQ(renderDiag(d), "[error dep-uncovered] T1 B3:2 i17 q5: msg");

    MtvDiag w{.code = MtvCode::DupFlagWrong,
              .severity = MtvSeverity::Warning,
              .message = "w"};
    EXPECT_EQ(renderDiag(w), "[warning dup-flag-wrong]: w");

    std::vector<MtvDiag> diags{d, w, d, d, w};
    dedupeDiags(diags);
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0], d);
    EXPECT_EQ(diags[1], w);
    EXPECT_EQ(countErrors(diags), 1);
}

} // namespace
} // namespace gmt
