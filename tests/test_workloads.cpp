#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

class WorkloadSuite : public ::testing::TestWithParam<int>
{
  protected:
    Workload
    workload() const
    {
        return allWorkloads()[GetParam()];
    }
};

TEST_P(WorkloadSuite, VerifiesAndTerminates)
{
    Workload w = workload();
    EXPECT_TRUE(verifyFunction(w.func).empty()) << w.name;
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, false);
    auto run = interpret(w.func, w.train_args, mem);
    EXPECT_GT(run.dyn_instrs, 100u) << w.name << " trivial train run";
    EXPECT_FALSE(run.live_outs.empty()) << w.name;
}

TEST_P(WorkloadSuite, RefLargerThanTrain)
{
    Workload w = workload();
    MemoryImage m1, m2;
    m1.alloc(w.mem_cells);
    m2.alloc(w.mem_cells);
    if (w.fill) {
        w.fill(m1, false);
        w.fill(m2, true);
    }
    auto train = interpret(w.func, w.train_args, m1);
    auto ref = interpret(w.func, w.ref_args, m2);
    EXPECT_GT(ref.dyn_instrs, 2 * train.dyn_instrs) << w.name;
}

TEST_P(WorkloadSuite, FillIsDeterministic)
{
    Workload w = workload();
    MemoryImage a, c;
    a.alloc(w.mem_cells);
    c.alloc(w.mem_cells);
    if (w.fill) {
        w.fill(a, true);
        w.fill(c, true);
    }
    EXPECT_TRUE(a == c) << w.name;
}

// The heavyweight end-to-end checks: each workload goes through the
// full pipeline under both schedulers, with and without COCO. The
// pipeline itself asserts output equivalence, queue drain, plan
// validity, and partition validity; here we additionally check the
// paper's headline invariant (COCO never increases communication on
// the profiled behaviour's shape).
TEST_P(WorkloadSuite, EndToEndBothSchedulers)
{
    Workload w = workload();
    for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
        PipelineOptions base;
        base.scheduler = sched;
        base.use_coco = false;
        base.simulate = false; // timing covered by the benches
        auto mtcg = runPipeline(w, base);

        PipelineOptions with;
        with.scheduler = sched;
        with.use_coco = true;
        with.simulate = false;
        auto coco = runPipeline(w, with);

        EXPECT_LE(coco.communication(), mtcg.communication())
            << w.name << " " << schedulerName(sched);
        // Better placement can only shrink the replicated control
        // flow (jumps of no-longer-relevant blocks, duplicated
        // branches), never grow the copied computation.
        EXPECT_LE(coco.total(), mtcg.total())
            << w.name << " " << schedulerName(sched);
    }
}

INSTANTIATE_TEST_SUITE_P(AllEleven, WorkloadSuite,
                         ::testing::Range(0, 11),
                         [](const auto &info) {
                             std::string n =
                                 allWorkloads()[info.param].name;
                             for (auto &c : n) {
                                 if (c == '.' || c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(Workloads, ElevenKernelsMatchFigure6b)
{
    auto all = allWorkloads();
    ASSERT_EQ(all.size(), 11u);
    EXPECT_EQ(all[0].function_name, "adpcm_decoder");
    EXPECT_EQ(all[2].function_name, "FindMaxGpAndSwap");
    EXPECT_EQ(all[3].exec_percent, 58);
    EXPECT_EQ(all[10].exec_percent, 26);
}

} // namespace
} // namespace gmt
