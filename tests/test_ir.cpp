#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace gmt
{
namespace
{

/** r0 = param; loop sums 0..r0-1; returns sum. */
Function
buildLoopSum()
{
    FunctionBuilder b("loop_sum");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId done = b.newBlock("done");

    b.setBlock(head);
    Reg i = b.constI(0);
    Reg sum = b.constI(0);
    b.jmp(body);

    b.setBlock(body);
    b.addInto(sum, sum, i);
    Reg one = b.constI(1);
    b.addInto(i, i, one);
    Reg again = b.cmpLt(i, n);
    b.br(again, body, done);

    b.setBlock(done);
    b.ret({sum});
    return b.finish();
}

TEST(IrBuilder, BuildsValidFunction)
{
    Function f = buildLoopSum();
    EXPECT_TRUE(verifyFunction(f).empty());
    EXPECT_EQ(f.numBlocks(), 3);
    EXPECT_EQ(f.params().size(), 1u);
    EXPECT_EQ(f.liveOuts().size(), 1u);
}

TEST(IrBuilder, EntryIsFirstBlock)
{
    Function f = buildLoopSum();
    EXPECT_EQ(f.entry(), 0);
}

TEST(IrBuilder, ExitBlockIsRetBlock)
{
    Function f = buildLoopSum();
    BlockId exit = f.exitBlock();
    ASSERT_NE(exit, kNoBlock);
    EXPECT_EQ(f.instr(f.block(exit).terminator()).op, Opcode::Ret);
}

TEST(IrFunction, UsesAndDefs)
{
    Function f = buildLoopSum();
    // The Ret uses the live-out.
    InstrId ret = f.block(f.exitBlock()).terminator();
    auto uses = f.usesOf(ret);
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0], f.liveOuts()[0]);
    EXPECT_EQ(f.defOf(ret), kNoReg);
}

TEST(IrFunction, PointBefore)
{
    Function f = buildLoopSum();
    const BasicBlock &body = f.block(1);
    InstrId second = body.instrs()[1];
    ProgramPoint p = f.pointBefore(second);
    EXPECT_EQ(p.block, 1);
    EXPECT_EQ(p.pos, 1);
}

TEST(IrFunction, InsertAtShiftsPositions)
{
    Function f = buildLoopSum();
    BlockId body = 1;
    size_t before = f.block(body).size();
    f.insertAt(body, 0, {.op = Opcode::Const, .dst = f.newReg(),
                         .imm = 42});
    EXPECT_EQ(f.block(body).size(), before + 1);
    EXPECT_EQ(f.instr(f.block(body).instrs()[0]).imm, 42);
}

TEST(IrVerifier, CatchesMidBlockTerminator)
{
    FunctionBuilder b("bad");
    BlockId bb = b.newBlock("b");
    BlockId cc = b.newBlock("c");
    b.setBlock(bb);
    b.jmp(cc);
    // Illegally append past the terminator.
    b.func().append(bb, {.op = Opcode::Const, .dst = b.func().newReg()});
    b.setBlock(cc);
    b.ret();
    Function f = b.finish();
    EXPECT_FALSE(verifyFunction(f).empty());
}

TEST(IrVerifier, CatchesMissingRet)
{
    FunctionBuilder b("bad2");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    b.jmp(bb); // infinite loop, no Ret anywhere
    Function f = b.finish();
    auto problems = verifyFunction(f);
    EXPECT_FALSE(problems.empty());
}

TEST(IrVerifier, CatchesUnreachableBlock)
{
    FunctionBuilder b("bad3");
    BlockId bb = b.newBlock("b");
    BlockId orphan = b.newBlock("orphan");
    b.setBlock(orphan);
    b.jmp(bb);
    b.setBlock(bb);
    b.ret();
    Function f = b.finish();
    auto problems = verifyFunction(f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("unreachable"), std::string::npos);
}

TEST(IrVerifier, VerifyOrDieThrows)
{
    FunctionBuilder b("bad4");
    b.newBlock("b"); // empty block
    Function f = b.finish();
    EXPECT_THROW(verifyOrDie(f), FatalError);
}

TEST(IrVerifier, QueueIdRangeChecked)
{
    FunctionBuilder b("qrange");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(1);
    b.func().append(bb, {.op = Opcode::Produce, .src1 = v, .queue = 3});
    b.ret();
    Function f = b.finish();
    EXPECT_TRUE(verifyFunction(f, {.num_queues = 4}).empty());
    auto problems = verifyFunction(f, {.num_queues = 2});
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("outside allocated range"),
              std::string::npos);
}

TEST(IrVerifier, QueueUsedInBothRoles)
{
    // Pre-multiplexing, a thread is one endpoint of each of its
    // queues: producing and consuming the same id is a bug.
    FunctionBuilder b("qroles");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(1);
    b.func().append(bb, {.op = Opcode::Produce, .src1 = v, .queue = 0});
    b.func().append(
        bb, {.op = Opcode::Consume, .dst = b.func().newReg(), .queue = 0});
    b.ret();
    Function f = b.finish();
    EXPECT_TRUE(verifyFunction(f).empty()); // not checked by default
    auto problems = verifyFunction(f, {.unique_placement_queues = true});
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("both producer and consumer"),
              std::string::npos);
}

TEST(IrVerifier, QueueSharedByTwoPlacements)
{
    // Same role, same queue, different registers: two placements were
    // assigned one queue id.
    FunctionBuilder b("qshare");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(1);
    Reg w = b.constI(2);
    b.func().append(bb, {.op = Opcode::Produce, .src1 = v, .queue = 0});
    b.func().append(bb, {.op = Opcode::Produce, .src1 = w, .queue = 0});
    b.ret();
    Function f = b.finish();
    auto problems = verifyFunction(f, {.unique_placement_queues = true});
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("two placements on one queue"),
              std::string::npos);

    // Repeating the *same* placement's op at several points is fine.
    FunctionBuilder b2("qrepeat");
    BlockId cc = b2.newBlock("b");
    b2.setBlock(cc);
    Reg u = b2.constI(1);
    b2.func().append(cc, {.op = Opcode::Produce, .src1 = u, .queue = 0});
    b2.func().append(cc, {.op = Opcode::Produce, .src1 = u, .queue = 0});
    b2.ret();
    Function f2 = b2.finish();
    EXPECT_TRUE(
        verifyFunction(f2, {.unique_placement_queues = true}).empty());
}

TEST(IrVerifier, VerifyOrDieNamesFunctionAndContext)
{
    FunctionBuilder b("culprit");
    b.newBlock("b"); // empty block: invalid
    Function f = b.finish();
    try {
        verifyOrDie(f, {}, "unit-test stage");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("@culprit"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unit-test stage"), std::string::npos) << msg;
    }
}

TEST(IrPrinter, ContainsMnemonicsAndLabels)
{
    Function f = buildLoopSum();
    std::string text = functionToString(f);
    EXPECT_NE(text.find("func @loop_sum"), std::string::npos);
    EXPECT_NE(text.find("head:"), std::string::npos);
    EXPECT_NE(text.find("cmplt"), std::string::npos);
    EXPECT_NE(text.find("br "), std::string::npos);
    EXPECT_NE(text.find("ret r"), std::string::npos);
}

TEST(IrPrinter, CommInstrFormat)
{
    FunctionBuilder b("comm");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(1);
    b.func().append(bb, {.op = Opcode::Produce, .src1 = v, .queue = 3});
    b.ret();
    Function f = b.finish();
    std::string text = functionToString(f);
    EXPECT_NE(text.find("produce [q3] = r0"), std::string::npos);
}

TEST(EdgeSplit, DiamondHasNoCriticalEdges)
{
    FunctionBuilder b("diamond");
    BlockId top = b.newBlock("top");
    BlockId left = b.newBlock("left");
    BlockId right = b.newBlock("right");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg c = b.constI(1);
    b.br(c, left, right);
    b.setBlock(left);
    b.jmp(join);
    b.setBlock(right);
    b.jmp(join);
    b.setBlock(join);
    b.ret();
    Function f = b.finish();
    EXPECT_EQ(splitCriticalEdges(f), 0);
}

TEST(EdgeSplit, SplitsLoopBackEdge)
{
    // head -> body; body -(br)-> body|exit. The edge body->body is
    // critical (body has 2 succs, body has 2 preds).
    Function f = ([] {
        FunctionBuilder b("loop");
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId exit = b.newBlock("exit");
        b.setBlock(head);
        Reg c = b.constI(1);
        b.jmp(body);
        b.setBlock(body);
        b.br(c, body, exit);
        b.setBlock(exit);
        b.ret();
        return b.finish();
    })();
    int before_blocks = f.numBlocks();
    int split = splitCriticalEdges(f);
    EXPECT_EQ(split, 1);
    EXPECT_EQ(f.numBlocks(), before_blocks + 1);
    EXPECT_TRUE(verifyFunction(f).empty());
    // No critical edges remain.
    EXPECT_EQ(splitCriticalEdges(f), 0);
}

TEST(EdgeSplit, PreservesBranchSlotOrder)
{
    Function f = ([] {
        FunctionBuilder b("slots");
        BlockId a = b.newBlock("a");
        BlockId t = b.newBlock("t");
        BlockId join = b.newBlock("join");
        b.setBlock(a);
        Reg c = b.constI(1);
        b.br(c, join, t); // taken -> join (critical: join has 2 preds)
        b.setBlock(t);
        b.jmp(join);
        b.setBlock(join);
        b.ret();
        return b.finish();
    })();
    splitCriticalEdges(f);
    // Taken slot (index 0) must now point at the split block, which
    // jumps to join.
    BlockId taken = f.block(0).succs()[0];
    EXPECT_EQ(f.block(taken).succs()[0], 2);
    EXPECT_TRUE(verifyFunction(f).empty());
}

} // namespace
} // namespace gmt
