#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "pdg/pdg_builder.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

bool
hasArc(const Pdg &pdg, InstrId src, InstrId dst, DepKind kind)
{
    for (int a : pdg.arcsFrom(src)) {
        const PdgArc &arc = pdg.arc(a);
        if (arc.dst == dst && arc.kind == kind)
            return true;
    }
    return false;
}

TEST(Pdg, StraightLineRegisterDep)
{
    FunctionBuilder b("sl");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg y = b.addImm(x, 1);       // const; add (uses x)
    Reg z = b.mul(y, y);          // uses y
    b.ret({z});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);

    // add -> mul through y, mul -> ret through z.
    InstrId add = f.block(bb).instrs()[1];
    InstrId mul = f.block(bb).instrs()[2];
    InstrId ret = f.block(bb).instrs()[3];
    EXPECT_TRUE(hasArc(pdg, add, mul, DepKind::Register));
    EXPECT_TRUE(hasArc(pdg, mul, ret, DepKind::Register));
    EXPECT_FALSE(hasArc(pdg, add, ret, DepKind::Register));
    (void)z;
}

TEST(Pdg, ConditionalDefsBothReachUse)
{
    FunctionBuilder b("cond");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId then_b = b.newBlock("then");
    BlockId else_b = b.newBlock("else");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg r = b.constI(0); // def 1 of r
    b.br(c, then_b, else_b);
    b.setBlock(then_b);
    b.constInto(r, 1); // def 2 of r
    b.jmp(join);
    b.setBlock(else_b);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.mov(r); // use of r
    b.ret({s});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);

    InstrId def1 = f.block(top).instrs()[0];
    InstrId def2 = f.block(then_b).instrs()[0];
    InstrId use = f.block(join).instrs()[0];
    EXPECT_TRUE(hasArc(pdg, def1, use, DepKind::Register));
    EXPECT_TRUE(hasArc(pdg, def2, use, DepKind::Register));
}

TEST(Pdg, KilledDefDoesNotReach)
{
    FunctionBuilder b("kill");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg r = b.constI(1);   // def 1
    b.constInto(r, 2);     // def 2 kills def 1
    Reg s = b.mov(r);      // use
    b.ret({s});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    InstrId def1 = f.block(bb).instrs()[0];
    InstrId def2 = f.block(bb).instrs()[1];
    InstrId use = f.block(bb).instrs()[2];
    EXPECT_FALSE(hasArc(pdg, def1, use, DepKind::Register));
    EXPECT_TRUE(hasArc(pdg, def2, use, DepKind::Register));
}

TEST(Pdg, LoopCarriedRegisterDep)
{
    FunctionBuilder b("loop");
    Reg n = b.param();
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");
    b.setBlock(head);
    Reg i = b.constI(0);
    b.jmp(body);
    b.setBlock(body);
    Reg one = b.constI(1);
    b.addInto(i, i, one); // def and use of i: loop carried
    Reg c = b.cmpLt(i, n);
    b.br(c, body, exit);
    b.setBlock(exit);
    b.ret({i});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    InstrId add = f.block(body).instrs()[1];
    // The add's def of i reaches its own use around the back edge.
    EXPECT_TRUE(hasArc(pdg, add, add, DepKind::Register));
}

TEST(Pdg, ControlArcsFromBranch)
{
    FunctionBuilder b("cd");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId then_b = b.newBlock("then");
    BlockId else_b = b.newBlock("else");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    b.br(c, then_b, else_b);
    b.setBlock(then_b);
    Reg x = b.constI(1);
    b.jmp(join);
    b.setBlock(else_b);
    b.jmp(join);
    b.setBlock(join);
    b.ret({x});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    InstrId branch = f.block(top).terminator();
    InstrId def = f.block(then_b).instrs()[0];
    InstrId ret = f.block(join).terminator();
    EXPECT_TRUE(hasArc(pdg, branch, def, DepKind::Control));
    EXPECT_FALSE(hasArc(pdg, branch, ret, DepKind::Control));
}

TEST(Pdg, MemoryArc)
{
    FunctionBuilder b("mem");
    Reg a = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg v = b.constI(5);
    b.store(a, 0, v, 2);
    Reg w = b.load(a, 0, 2);
    b.ret({w});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    InstrId st = f.block(bb).instrs()[1];
    InstrId ld = f.block(bb).instrs()[2];
    EXPECT_TRUE(hasArc(pdg, st, ld, DepKind::Memory));
}

TEST(Pdg, RetUsesLiveOuts)
{
    FunctionBuilder b("ret");
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg x = b.constI(3);
    b.ret({x});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    InstrId def = f.block(bb).instrs()[0];
    InstrId ret = f.block(bb).terminator();
    EXPECT_TRUE(hasArc(pdg, def, ret, DepKind::Register));
}

// Property: every register arc's dst actually uses the register and
// src defines it; every control arc's src is a branch.
TEST(PdgProperty, ArcWellFormedness)
{
    Rng rng(616);
    for (int trial = 0; trial < 30; ++trial) {
        auto prog = generateProgram(rng);
        const Function &f = prog.func;
        Pdg pdg = buildPdg(f);
        for (const auto &arc : pdg.arcs()) {
            switch (arc.kind) {
              case DepKind::Register: {
                ASSERT_EQ(f.defOf(arc.src), arc.reg);
                auto uses = f.usesOf(arc.dst);
                ASSERT_TRUE(std::find(uses.begin(), uses.end(),
                                      arc.reg) != uses.end());
                break;
              }
              case DepKind::Control:
                ASSERT_TRUE(f.instr(arc.src).isBranch());
                break;
              case DepKind::Memory:
                ASSERT_TRUE(f.instr(arc.src).isMemoryAccess());
                ASSERT_TRUE(f.instr(arc.dst).isMemoryAccess());
                break;
            }
        }
    }
}

} // namespace
} // namespace gmt
