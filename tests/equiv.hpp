#ifndef GMT_TESTS_EQUIV_HPP
#define GMT_TESTS_EQUIV_HPP

/**
 * @file
 * The ST-vs-MT equivalence oracle shared by the MTCG, COCO, and
 * workload test suites: a generated multi-threaded program must
 * observe exactly the single-threaded live-outs and final memory, for
 * every interleaving schedule, must never deadlock, and must drain
 * every queue.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/interpreter.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Outcome of one equivalence check (usable in ASSERT_TRUE). */
struct EquivOutcome
{
    bool ok = true;
    std::string detail;
    MtRunResult mt;
};

/**
 * Run @p prog against the reference @p f on @p args and compare.
 * @p mem_cells cells of memory are allocated and pre-filled by
 * @p fill (may be null).
 */
inline EquivOutcome
checkEquivalence(const Function &f, const MtProgram &prog,
                 const std::vector<int64_t> &args, int64_t mem_cells,
                 void (*fill)(MemoryImage &), SchedulePolicy policy,
                 uint64_t seed)
{
    EquivOutcome out;

    MemoryImage st_mem;
    st_mem.alloc(mem_cells);
    if (fill)
        fill(st_mem);
    auto st = interpret(f, args, st_mem);

    MemoryImage mt_mem;
    mt_mem.alloc(mem_cells);
    if (fill)
        fill(mt_mem);
    out.mt = interpretMt(prog, args, mt_mem, policy, seed);

    if (out.mt.deadlock) {
        out.ok = false;
        out.detail = "deadlock";
        return out;
    }
    if (!out.mt.queues_drained) {
        out.ok = false;
        out.detail = "queues not drained";
        return out;
    }
    if (out.mt.live_outs != st.live_outs) {
        out.ok = false;
        out.detail = "live-out mismatch";
        return out;
    }
    if (!(mt_mem == st_mem)) {
        out.ok = false;
        out.detail = "memory mismatch";
        return out;
    }
    return out;
}

} // namespace gmt

#endif // GMT_TESTS_EQUIV_HPP
