#include <gtest/gtest.h>

#include "analysis/dominators.hpp"
#include "analysis/loop_info.hpp"
#include "ir/builder.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

EdgeProfile
profileOf(const Function &f, const std::vector<int64_t> &args,
          int64_t cells)
{
    MemoryImage mem;
    mem.alloc(cells);
    auto run = interpret(f, args, mem);
    return EdgeProfile::fromRun(f, run.profile);
}

TEST(Partition, SingleThreadAssignsEverything)
{
    Rng rng(1);
    auto prog = generateProgram(rng);
    auto p = singleThreadPartition(prog.func);
    Pdg pdg = buildPdg(prog.func);
    EXPECT_TRUE(validatePartition(pdg, p, true).empty());
    EXPECT_EQ(countCrossThreadArcs(pdg, p), 0);
}

TEST(Partition, MembersOf)
{
    Rng rng(2);
    auto prog = generateProgram(rng);
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(prog.func.numInstrs(), 0);
    p.assign[0] = 1;
    auto m1 = p.membersOf(1);
    ASSERT_EQ(m1.size(), 1u);
    EXPECT_EQ(m1[0], 0);
}

TEST(Partition, ValidateCatchesBadThread)
{
    Rng rng(3);
    auto prog = generateProgram(rng);
    Pdg pdg = buildPdg(prog.func);
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(prog.func.numInstrs(), 0);
    p.assign[0] = 7;
    EXPECT_FALSE(validatePartition(pdg, p, false).empty());
}

TEST(Dswp, ProducesValidPipeline)
{
    Rng rng(44);
    for (int trial = 0; trial < 25; ++trial) {
        auto prog = generateProgram(rng);
        Pdg pdg = buildPdg(prog.func);
        auto profile = profileOf(prog.func, {3, -5}, prog.array_cells);
        auto p = dswpPartition(pdg, profile, {.num_threads = 2});
        auto problems = validatePartition(pdg, p, true);
        ASSERT_TRUE(problems.empty())
            << "trial " << trial << ": " << problems[0];
    }
}

TEST(Dswp, MoreThreadsStillPipeline)
{
    Rng rng(45);
    auto prog = generateProgram(rng, {.max_depth = 4, .max_stmts = 8});
    Pdg pdg = buildPdg(prog.func);
    auto profile = profileOf(prog.func, {9, 2}, prog.array_cells);
    for (int nt : {3, 4, 6}) {
        auto p = dswpPartition(pdg, profile, {.num_threads = nt});
        EXPECT_TRUE(validatePartition(pdg, p, true).empty());
        EXPECT_EQ(p.num_threads, nt);
    }
}

TEST(Dswp, SplitsWorkAcrossThreads)
{
    // A two-stage producer/consumer loop nest should split.
    Rng rng(46);
    int split_count = 0;
    for (int trial = 0; trial < 10; ++trial) {
        auto prog = generateProgram(rng, {.max_depth = 4});
        Pdg pdg = buildPdg(prog.func);
        auto profile = profileOf(prog.func, {7, 3}, prog.array_cells);
        auto p = dswpPartition(pdg, profile, {.num_threads = 2});
        if (!p.membersOf(0).empty() && !p.membersOf(1).empty())
            ++split_count;
    }
    EXPECT_GT(split_count, 0);
}

TEST(Gremio, ProducesValidAssignment)
{
    Rng rng(47);
    for (int trial = 0; trial < 25; ++trial) {
        auto prog = generateProgram(rng);
        Pdg pdg = buildPdg(prog.func);
        auto profile = profileOf(prog.func, {4, 11}, prog.array_cells);
        auto p = gremioPartition(pdg, profile, {.num_threads = 2});
        ASSERT_TRUE(validatePartition(pdg, p, false).empty());
    }
}

TEST(Gremio, UsesBothThreadsOnParallelWork)
{
    // Two independent long dependence chains: list scheduling should
    // place them on different threads.
    FunctionBuilder b("par");
    Reg a = b.param();
    Reg c = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg x = a, y = c;
    for (int i = 0; i < 10; ++i) {
        x = b.addImm(x, 3);
        y = b.addImm(y, 5);
    }
    b.ret({x, y});
    Function f = b.finish();
    Pdg pdg = buildPdg(f);
    MemoryImage mem;
    auto run = interpret(f, {1, 2}, mem);
    auto profile = EdgeProfile::fromRun(f, run.profile);
    auto p = gremioPartition(pdg, profile, {.num_threads = 2});
    EXPECT_FALSE(p.membersOf(0).empty());
    EXPECT_FALSE(p.membersOf(1).empty());
}

TEST(Gremio, RespectsSingleThreadDegenerate)
{
    Rng rng(48);
    auto prog = generateProgram(rng);
    Pdg pdg = buildPdg(prog.func);
    auto profile = profileOf(prog.func, {1, 1}, prog.array_cells);
    auto p = gremioPartition(pdg, profile, {.num_threads = 1});
    EXPECT_TRUE(validatePartition(pdg, p, true).empty());
    EXPECT_EQ(countCrossThreadArcs(pdg, p), 0);
}

} // namespace
} // namespace gmt
