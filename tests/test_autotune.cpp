/**
 * @file
 * Feedback-directed autotuner tests (src/autotune/): convergence
 * determinism across jobs / cache states / warm-vs-cold max-flow,
 * trajectory monotonicity (an accepted move never worsens simulated
 * cycles), clean static verification (happens-before included) of
 * every intermediate schedule via the on_accept hook, cache-key and
 * cell-id plumbing, and the MetricsRegistry counters.
 */

#include <gtest/gtest.h>

#include "driver/pass_manager.hpp"
#include "mtverify/mtverify.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

PipelineOptions
autotuneOptions(Scheduler sched)
{
    PipelineOptions po;
    po.scheduler = sched;
    po.use_coco = true;
    po.autotune = true;
    return po;
}

/** Run one cell through the standard pipeline. */
void
runCell(PipelineContext &ctx)
{
    PassManager::standardPipeline().run(ctx);
    ASSERT_TRUE(ctx.autotune) << "autotune pass did not publish";
}

TEST(Autotune, ImprovesOrHoldsAndConverges)
{
    Workload w = makeKs();
    PipelineContext ctx(w, autotuneOptions(Scheduler::Gremio));
    runCell(ctx);

    const PipelineResult &r = ctx.result;
    EXPECT_TRUE(r.autotuned);
    EXPECT_TRUE(r.autotune_converged);
    EXPECT_GT(r.baseline_mt_cycles, 0u);
    EXPECT_LE(r.mt_cycles, r.baseline_mt_cycles);
    EXPECT_GE(r.autotune_iterations, 1);

    const AutotuneResult &at = ctx.autotune->result;
    EXPECT_EQ(at.baseline_cycles, r.baseline_mt_cycles);
    EXPECT_EQ(at.final_schedule.cycles, r.mt_cycles);
    EXPECT_FALSE(ctx.autotune->moves_json.empty());
}

// The monotonicity unit: the trajectory is strictly decreasing (one
// entry per accepted move after the baseline), and every accepted
// move in the log improves on the cycles it started from.
TEST(Autotune, AcceptedMovesNeverWorsenCycles)
{
    for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
        for (Workload (*make)() :
             {makeKs, makeAdpcmDec, makeAdpcmEnc}) {
            Workload w = make();
            PipelineContext ctx(w, autotuneOptions(sched));
            runCell(ctx);
            const AutotuneResult &at = ctx.autotune->result;

            ASSERT_FALSE(at.trajectory.empty());
            EXPECT_EQ(at.trajectory.size(),
                      1 + static_cast<size_t>(at.moves_accepted));
            for (size_t i = 1; i < at.trajectory.size(); ++i)
                EXPECT_LT(at.trajectory[i], at.trajectory[i - 1])
                    << w.name;

            uint64_t prev = at.baseline_cycles;
            for (const AutotuneMove &m : at.moves) {
                if (!m.accepted)
                    continue;
                EXPECT_LT(m.cycles, prev) << w.name;
                prev = m.cycles;
            }
            EXPECT_EQ(prev, at.final_schedule.cycles) << w.name;
        }
    }
}

/**
 * The determinism contract: the tuned plan, the move log (canonical
 * JSON bytes), the trajectory, and the whole PipelineResult are
 * identical however the cell is executed — serially with no cache,
 * against a cold cache, against a warm cache (pure hit), with COCO's
 * cut solver running 4-way parallel on a shared pool, and with the
 * max-flow warm-start path disabled (every solve cold).
 */
TEST(Autotune, DeterministicAcrossJobsCacheAndWarmStart)
{
    Workload w = makeKs();

    // Reference: serial, no cache.
    PipelineContext base(w, autotuneOptions(Scheduler::Gremio));
    runCell(base);

    auto expectSame = [&](const PipelineContext &other,
                          const char *what) {
        EXPECT_EQ(base.result, other.result) << what;
        EXPECT_EQ(base.autotune->moves_json,
                  other.autotune->moves_json)
            << what;
        EXPECT_EQ(base.autotune->result.trajectory,
                  other.autotune->result.trajectory)
            << what;
        EXPECT_EQ(base.partition->partition.assign,
                  other.partition->partition.assign)
            << what;
        EXPECT_EQ(base.plan->plan == other.plan->plan, true) << what;
        EXPECT_EQ(base.autotune->result.iter_wall_ms.size(),
                  other.autotune->result.iter_wall_ms.size())
            << what;
    };

    // Cold cache, then a pure-hit warm rerun of the same cache.
    ArtifactCache cache;
    PipelineContext cold(w, autotuneOptions(Scheduler::Gremio));
    cold.cache = &cache;
    runCell(cold);
    expectSame(cold, "cold cache");

    PipelineContext warm(w, autotuneOptions(Scheduler::Gremio));
    warm.cache = &cache;
    runCell(warm);
    expectSame(warm, "warm cache");
    bool autotune_hit = false;
    for (const PassStats &ps : warm.pass_stats)
        if (ps.pass == "autotune")
            autotune_hit = ps.cached;
    EXPECT_TRUE(autotune_hit);

    // Parallel COCO cut solving on a shared pool.
    ThreadPool pool(4);
    PipelineOptions po = autotuneOptions(Scheduler::Gremio);
    po.coco_jobs = 4;
    PipelineContext pooled(w, po);
    pooled.pool = &pool;
    runCell(pooled);
    expectSame(pooled, "coco_jobs=4");

    // Warm-start ablation: every max-flow solve cold.
    PipelineOptions po2 = autotuneOptions(Scheduler::Gremio);
    po2.coco.warm_start = false;
    PipelineContext coldflow(w, po2);
    runCell(coldflow);
    EXPECT_EQ(base.result, coldflow.result) << "warm_start=false";
    EXPECT_EQ(base.autotune->result.trajectory,
              coldflow.autotune->result.trajectory)
        << "warm_start=false";
    // The move log's decisions match too, though the canonical JSON
    // is compared via the cycles/acceptance fields rather than bytes:
    // solver execution counters are deliberately excluded from it.
    EXPECT_EQ(base.autotune->moves_json, coldflow.autotune->moves_json)
        << "warm_start=false";
}

/**
 * Every intermediate (accepted) schedule statically verifies clean,
 * happens-before race check included — observed through the
 * on_accept hook, which fires once per accepted move with the full
 * schedule about to become current.
 */
TEST(Autotune, IntermediateSchedulesVerifyClean)
{
    Workload w = makeKs();
    PipelineContext ctx(w, autotuneOptions(Scheduler::Gremio));
    int verified = 0;
    ctx.opts.autotune_opts.on_accept =
        [&](const AutotuneSchedule &s) {
            ASSERT_TRUE(ctx.ir && ctx.pdg);
            MtVerifyInput in;
            in.orig = &ctx.ir->func;
            in.pdg = &ctx.pdg->pdg;
            in.partition = &s.partition;
            in.plan = &s.plan;
            in.queue_of = &s.queue_of;
            in.prog = &s.prog;
            in.check_hb = true;
            MtVerifyResult res = verifyMtProgram(in);
            EXPECT_TRUE(res.ok())
                << "intermediate schedule fails mtverify";
            ++verified;
        };
    runCell(ctx);
    EXPECT_EQ(verified, ctx.result.autotune_moves_accepted);
    EXPECT_GT(verified, 0) << "ks/GREMIO should accept >= 1 move";
}

TEST(Autotune, CellIdAndCacheKeyCarryTheAutotuneAxes)
{
    Workload w = makeKs();
    PipelineContext on(w, autotuneOptions(Scheduler::Gremio));
    PipelineOptions po_off = autotuneOptions(Scheduler::Gremio);
    po_off.autotune = false;
    PipelineContext off(w, po_off);

    EXPECT_NE(on.cellId().find("+AT"), std::string::npos);
    EXPECT_EQ(off.cellId().find("+AT"), std::string::npos);

    EXPECT_NE(autotuneKey(on), autotuneKey(off));
    EXPECT_NE(autotuneKey(on).find("|at|"), std::string::npos);
    // Upstream keys are shared: baseline and autotuned cells reuse
    // the same codegen artifacts.
    EXPECT_EQ(queueAllocKey(on), queueAllocKey(off));
    // Downstream keys split: the obs artifacts describe different
    // schedules.
    EXPECT_NE(obsProfileKey(on), obsProfileKey(off));
    EXPECT_NE(provenanceKey(on), provenanceKey(off));
}

TEST(Autotune, MetricsCountersAccumulate)
{
    MetricsRegistry &m = MetricsRegistry::global();
    const uint64_t it0 = m.counter("autotune.iterations").value();
    const uint64_t acc0 = m.counter("autotune.moves_accepted").value();
    const uint64_t rej0 = m.counter("autotune.moves_rejected").value();
    const uint64_t warm0 =
        m.counter("autotune.warm_cut_reuses").value();

    Workload w = makeKs();
    PipelineContext ctx(w, autotuneOptions(Scheduler::Gremio));
    runCell(ctx);

    const AutotuneResult &at = ctx.autotune->result;
    EXPECT_EQ(m.counter("autotune.iterations").value() - it0,
              static_cast<uint64_t>(at.iterations));
    EXPECT_EQ(m.counter("autotune.moves_accepted").value() - acc0,
              static_cast<uint64_t>(at.moves_accepted));
    EXPECT_EQ(m.counter("autotune.moves_rejected").value() - rej0,
              static_cast<uint64_t>(at.moves_rejected));
    EXPECT_EQ(m.counter("autotune.warm_cut_reuses").value() - warm0,
              at.warm_cut_reuses);
}

} // namespace
} // namespace gmt
