/**
 * @file
 * The parallel COCO contract: speculative parallel cut solving must
 * produce a comm plan identical to the serial algorithm on every
 * cell, the nested ThreadPool submission it relies on must be
 * deadlock-free, and the DinicPruned fast path must find the same
 * min cut as the reference algorithm (source-side min cuts are
 * unique across all maximum flows, so this is exact, not heuristic).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "graph/max_flow.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

// ---------------------------------------------------------------
// Plan identity over the full {GREMIO, DSWP} x workload matrix.
// ---------------------------------------------------------------

void
expectSamePlan(const CommPlan &serial, const CommPlan &parallel,
               const std::string &cell)
{
    ASSERT_EQ(serial.placements.size(), parallel.placements.size())
        << cell;
    for (size_t i = 0; i < serial.placements.size(); ++i) {
        const CommPlacement &a = serial.placements[i];
        const CommPlacement &b = parallel.placements[i];
        EXPECT_EQ(a.kind, b.kind) << cell << " placement " << i;
        EXPECT_EQ(a.reg, b.reg) << cell << " placement " << i;
        EXPECT_EQ(a.src_thread, b.src_thread)
            << cell << " placement " << i;
        EXPECT_EQ(a.dst_thread, b.dst_thread)
            << cell << " placement " << i;
        EXPECT_EQ(a.points, b.points) << cell << " placement " << i;
    }
}

TEST(CocoParallel, PlanIdenticalAtAnyJobCount)
{
    ThreadPool pool(4);
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.use_coco = true;
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);

            const Function &f = ctx.pdg->ir->func;
            auto solve = [&](const CocoExec &exec) {
                return cocoOptimize(f, ctx.pdg->pdg,
                                    ctx.partition->partition,
                                    ctx.pdg->cd,
                                    ctx.profile->profile,
                                    CocoOptions{}, exec);
            };
            CocoResult serial = solve(CocoExec{});
            for (int jobs : {2, 4, 8}) {
                CocoResult par = solve(CocoExec{&pool, jobs, nullptr});
                expectSamePlan(serial.plan, par.plan, ctx.cellId());
                EXPECT_EQ(serial.iterations, par.iterations)
                    << ctx.cellId();
                EXPECT_EQ(serial.register_cut_cost,
                          par.register_cut_cost)
                    << ctx.cellId();
                EXPECT_EQ(serial.memory_cut_cost, par.memory_cut_cost)
                    << ctx.cellId();
            }
        }
    }
}

// Ablation options must not disturb the contract either.
TEST(CocoParallel, PlanIdenticalUnderAblations)
{
    ThreadPool pool(4);
    const Workload w = allWorkloads().front();
    PipelineOptions po;
    po.scheduler = Scheduler::Dswp;
    po.use_coco = true;
    PipelineContext ctx(w, po);
    PassManager::codegenPipeline().run(ctx);
    const Function &f = ctx.pdg->ir->func;

    for (bool penalties : {false, true}) {
        for (bool multi_pair : {false, true}) {
            CocoOptions opts;
            opts.control_flow_penalties = penalties;
            opts.multi_pair_memory = multi_pair;
            CocoResult serial =
                cocoOptimize(f, ctx.pdg->pdg,
                             ctx.partition->partition, ctx.pdg->cd,
                             ctx.profile->profile, opts, CocoExec{});
            CocoResult par =
                cocoOptimize(f, ctx.pdg->pdg,
                             ctx.partition->partition, ctx.pdg->cd,
                             ctx.profile->profile, opts,
                             CocoExec{&pool, 8, nullptr});
            expectSamePlan(serial.plan, par.plan, ctx.cellId());
        }
    }
}

// Warm-started cut solving (the default) must produce plans
// byte-identical to cold from-scratch solving, across the full
// matrix, serially and in parallel — and it must actually fire (the
// repeat-until loop re-solves every problem at least twice, so a
// converging run always has warm opportunities).
TEST(CocoParallel, WarmStartPlanIdentical)
{
    MetricsRegistry &m = MetricsRegistry::global();
    uint64_t warm0 = m.counter("coco.warm_starts").value();
    ThreadPool pool(4);
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.use_coco = true;
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);

            const Function &f = ctx.pdg->ir->func;
            auto solve = [&](bool warm, const CocoExec &exec) {
                CocoOptions opts;
                opts.warm_start = warm;
                return cocoOptimize(f, ctx.pdg->pdg,
                                    ctx.partition->partition,
                                    ctx.pdg->cd,
                                    ctx.profile->profile, opts, exec);
            };
            CocoResult cold = solve(false, CocoExec{});
            CocoResult warm = solve(true, CocoExec{});
            expectSamePlan(cold.plan, warm.plan, ctx.cellId());
            EXPECT_EQ(cold.iterations, warm.iterations)
                << ctx.cellId();
            EXPECT_EQ(cold.register_cut_cost, warm.register_cut_cost)
                << ctx.cellId();
            EXPECT_EQ(cold.memory_cut_cost, warm.memory_cut_cost)
                << ctx.cellId();
            CocoResult warm_par =
                solve(true, CocoExec{&pool, 4, nullptr});
            expectSamePlan(cold.plan, warm_par.plan, ctx.cellId());
        }
    }
    EXPECT_GT(m.counter("coco.warm_starts").value(), warm0);
}

// The super-pair memory ablation exercises the true-resolve warm path
// for memory graphs (multi-pair rewinds the build instead); both must
// agree with their cold counterparts.
TEST(CocoParallel, WarmStartIdenticalUnderAblations)
{
    const Workload w = allWorkloads().front();
    PipelineOptions po;
    po.scheduler = Scheduler::Dswp;
    po.use_coco = true;
    PipelineContext ctx(w, po);
    PassManager::codegenPipeline().run(ctx);
    const Function &f = ctx.pdg->ir->func;

    for (bool penalties : {false, true}) {
        for (bool multi_pair : {false, true}) {
            CocoOptions opts;
            opts.control_flow_penalties = penalties;
            opts.multi_pair_memory = multi_pair;
            opts.warm_start = false;
            CocoResult cold =
                cocoOptimize(f, ctx.pdg->pdg,
                             ctx.partition->partition, ctx.pdg->cd,
                             ctx.profile->profile, opts, CocoExec{});
            opts.warm_start = true;
            CocoResult warm =
                cocoOptimize(f, ctx.pdg->pdg,
                             ctx.partition->partition, ctx.pdg->cd,
                             ctx.profile->profile, opts, CocoExec{});
            expectSamePlan(cold.plan, warm.plan, ctx.cellId());
        }
    }
}

// ---------------------------------------------------------------
// Nested submission on the shared pool.
// ---------------------------------------------------------------

TEST(TaskGroupNested, TwoLevelsComplete)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 4; ++i) {
        outer.run([&pool, &done] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.run([&done] { done.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(done.load(), 32);
}

// Three levels on a single-worker pool: only the claim-and-run-inline
// protocol keeps this from deadlocking (the one worker is blocked in
// a nested wait() for most of the run).
TEST(TaskGroupNested, ThreeLevelsSingleWorker)
{
    ThreadPool pool(1);
    std::atomic<int> done{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 3; ++i) {
        outer.run([&pool, &done] {
            TaskGroup mid(pool);
            for (int j = 0; j < 3; ++j) {
                mid.run([&pool, &done] {
                    TaskGroup inner(pool);
                    for (int k = 0; k < 3; ++k)
                        inner.run([&done] { done.fetch_add(1); });
                    inner.wait();
                });
            }
            mid.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(done.load(), 27);
}

// Concurrent groups on one pool must not steal each other's work or
// lose completions.
TEST(TaskGroupNested, ConcurrentGroupsIndependent)
{
    ThreadPool pool(3);
    std::atomic<int> a{0}, b{0};
    TaskGroup ga(pool);
    TaskGroup gb(pool);
    for (int i = 0; i < 50; ++i) {
        ga.run([&a] { a.fetch_add(1); });
        gb.run([&b] { b.fetch_add(1); });
    }
    ga.wait();
    EXPECT_EQ(a.load(), 50);
    gb.wait();
    EXPECT_EQ(b.load(), 50);
}

// An empty group's wait() must return immediately.
TEST(TaskGroupNested, EmptyGroup)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.wait();
    group.run([] {});
    group.wait();
}

// ---------------------------------------------------------------
// DinicPruned differential on randomized networks.
// ---------------------------------------------------------------

TEST(DinicPruned, MatchesReferenceOnRandomNetworks)
{
    Rng rng(20070205);
    for (int trial = 0; trial < 60; ++trial) {
        int n = 4 + static_cast<int>(rng.nextBelow(30));
        struct Arc
        {
            int u, v;
            Capacity cap;
        };
        std::vector<Arc> arcs;
        for (int e = 0; e < 3 * n; ++e) {
            int u = static_cast<int>(rng.nextBelow(n));
            int v = static_cast<int>(rng.nextBelow(n));
            if (u == v)
                continue;
            // Mix finite and infinite capacities, as COCO's flow
            // graphs do (infinite = "must not cut here").
            Capacity cap = rng.nextBool(0.15)
                               ? kInfCapacity
                               : static_cast<Capacity>(
                                     1 + rng.nextBelow(50));
            arcs.push_back({u, v, cap});
        }

        FlowNetwork ref_net(n), fast_net(n);
        for (const Arc &a : arcs) {
            ref_net.addArc(a.u, a.v, a.cap);
            fast_net.addArc(a.u, a.v, a.cap);
        }
        MaxFlow ref(ref_net, FlowAlgorithm::EdmondsKarp);
        MaxFlow fast(fast_net, FlowAlgorithm::DinicPruned);
        Capacity ref_flow = ref.solve(0, n - 1);
        Capacity fast_flow = fast.solve(0, n - 1);
        ASSERT_EQ(ref_flow, fast_flow) << "trial " << trial;
        EXPECT_EQ(ref.finite(), fast.finite()) << "trial " << trial;
        // The source-side min cut is the same for every max flow, so
        // the chosen arcs must match exactly, not just in cost.
        EXPECT_EQ(ref.minCutArcs(), fast.minCutArcs())
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------
// Network arena reuse: reset + attach must behave like fresh builds.
// ---------------------------------------------------------------

TEST(FlowNetworkReuse, ResetMatchesFreshNetwork)
{
    Rng rng(424242);
    FlowNetwork arena(0);
    MaxFlow mf(FlowAlgorithm::Dinic);
    for (int trial = 0; trial < 40; ++trial) {
        int n = 3 + static_cast<int>(rng.nextBelow(12));
        arena.reset(n);
        FlowNetwork fresh(n);
        for (int e = 0; e < 2 * n; ++e) {
            int u = static_cast<int>(rng.nextBelow(n));
            int v = static_cast<int>(rng.nextBelow(n));
            if (u == v)
                continue;
            Capacity cap =
                static_cast<Capacity>(1 + rng.nextBelow(30));
            arena.addArc(u, v, cap);
            fresh.addArc(u, v, cap);
        }
        mf.attach(arena);
        MaxFlow ref(fresh, FlowAlgorithm::EdmondsKarp);
        Capacity got = mf.solve(0, n - 1);
        ASSERT_EQ(got, ref.solve(0, n - 1)) << "trial " << trial;
        EXPECT_EQ(mf.minCutArcs(), ref.minCutArcs())
            << "trial " << trial;
    }
}

TEST(FlowNetworkReuse, AddNodeReusesDirtySlots)
{
    FlowNetwork net(2);
    net.addArc(0, 1, 5);
    MaxFlow mf(net, FlowAlgorithm::EdmondsKarp);
    EXPECT_EQ(mf.solve(0, 1), 5);

    net.reset(2);
    int extra = net.addNode();
    EXPECT_EQ(extra, 2);
    net.addArc(0, extra, 3);
    net.addArc(extra, 1, 3);
    mf.attach(net);
    EXPECT_EQ(mf.solve(0, 1), 3);
}

} // namespace
} // namespace gmt
