#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "support/rng.hpp"

namespace gmt
{
namespace
{

/** Reference semantics for every ALU opcode. */
int64_t
reference(Opcode op, int64_t a, int64_t b)
{
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Div: return b == 0 ? 0 : a / b;
      case Opcode::Rem: return b == 0 ? 0 : a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 63);
      case Opcode::Shr: return a >> (b & 63);
      case Opcode::Min: return std::min(a, b);
      case Opcode::Max: return std::max(a, b);
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      default: return 0;
    }
}

class BinopSemantics : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(BinopSemantics, MatchesReferenceThroughInterpreter)
{
    Opcode op = GetParam();
    FunctionBuilder b("op");
    Reg x = b.param();
    Reg y = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg r = b.binop(op, x, y);
    b.ret({r});
    Function f = b.finish();
    verifyOrDie(f);

    Rng rng(7000 + static_cast<int>(op));
    for (int k = 0; k < 50; ++k) {
        int64_t a = rng.nextRange(-1000, 1000);
        int64_t c = rng.nextRange(-64, 64);
        MemoryImage mem;
        auto run = interpret(f, {a, c}, mem);
        ASSERT_EQ(run.live_outs[0], reference(op, a, c))
            << opcodeName(op) << "(" << a << ", " << c << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinops, BinopSemantics,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul,
                      Opcode::Div, Opcode::Rem, Opcode::And,
                      Opcode::Or, Opcode::Xor, Opcode::Shl,
                      Opcode::Shr, Opcode::Min, Opcode::Max,
                      Opcode::CmpEq, Opcode::CmpNe, Opcode::CmpLt,
                      Opcode::CmpLe, Opcode::CmpGt, Opcode::CmpGe),
    [](const auto &info) {
        return std::string(opcodeName(info.param));
    });

TEST(UnopSemantics, NegNotAbsMov)
{
    FunctionBuilder b("un");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg n = b.neg(x);
    Reg t = b.unop(Opcode::Not, x);
    Reg a = b.abs(x);
    Reg m = b.mov(x);
    b.ret({n, t, a, m});
    Function f = b.finish();
    for (int64_t v : {-17, 0, 3}) {
        MemoryImage mem;
        auto run = interpret(f, {v}, mem);
        EXPECT_EQ(run.live_outs[0], -v);
        EXPECT_EQ(run.live_outs[1], ~v);
        EXPECT_EQ(run.live_outs[2], v < 0 ? -v : v);
        EXPECT_EQ(run.live_outs[3], v);
    }
}

TEST(OpcodeMeta, NamesAndClasses)
{
    EXPECT_EQ(opcodeName(Opcode::ProduceSync), "produce.sync");
    EXPECT_TRUE(isTerminator(Opcode::Ret));
    EXPECT_FALSE(isTerminator(Opcode::Add));
    EXPECT_TRUE(isMemoryAccess(Opcode::Load));
    EXPECT_TRUE(isCommunication(Opcode::Consume));
    EXPECT_FALSE(hasDest(Opcode::Store));
    EXPECT_TRUE(hasDest(Opcode::Consume));
    EXPECT_EQ(numSrcs(Opcode::Store), 2);
    EXPECT_EQ(numSrcs(Opcode::Br), 1);
    EXPECT_TRUE(usesMemoryPort(Opcode::Produce));
    EXPECT_FALSE(usesMemoryPort(Opcode::Add));
}

} // namespace
} // namespace gmt
