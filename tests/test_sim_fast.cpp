#include <gtest/gtest.h>

#include "driver/pass_manager.hpp"
#include "ir/builder.hpp"
#include "sim/cmp_simulator.hpp"
#include "workloads/workload.hpp"

namespace gmt
{
namespace
{

MemoryImage
refMemory(const Workload &w)
{
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, /*ref=*/true);
    return mem;
}

SimResult
runEngine(const MtProgram &prog, const std::vector<int64_t> &args,
          MemoryImage mem, const MachineConfig &m, SimEngine e)
{
    CmpSimulator sim(m, e);
    return sim.run(prog, args, mem);
}

/**
 * The differential-testing contract: across the full benchmark
 * matrix (11 workloads x {DSWP, GREMIO} x {COCO off, on}), the fast
 * engine's SimResult — cycles, per-core stall accounting, cache
 * counters, everything architectural — equals the reference loop's,
 * for both the MT program and the single-threaded baseline.
 */
TEST(SimFastDifferential, FullMatrixBitIdentical)
{
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Dswp, Scheduler::Gremio}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                PipelineContext ctx(w, po);
                PassManager::codegenPipeline().run(ctx);

                SCOPED_TRACE(ctx.cellId());
                const MachineConfig &m = po.machine;

                SimResult mt_fast =
                    runEngine(ctx.prog->prog, w.ref_args, refMemory(w),
                              m, SimEngine::Fast);
                SimResult mt_ref =
                    runEngine(ctx.prog->prog, w.ref_args, refMemory(w),
                              m, SimEngine::Reference);
                EXPECT_TRUE(mt_fast == mt_ref);
                EXPECT_EQ(mt_fast.engine.iterations +
                              mt_fast.engine.skipped,
                          mt_fast.cycles);

                MemoryImage st_mem_fast = refMemory(w);
                MemoryImage st_mem_ref = refMemory(w);
                SimResult st_fast = simulateSingleThreaded(
                    ctx.ir->func, w.ref_args, st_mem_fast, m,
                    SimEngine::Fast);
                SimResult st_ref = simulateSingleThreaded(
                    ctx.ir->func, w.ref_args, st_mem_ref, m,
                    SimEngine::Reference);
                EXPECT_TRUE(st_fast == st_ref);
                EXPECT_EQ(st_mem_fast, st_mem_ref);
            }
        }
    }
}

/**
 * Cycle skipping must fire on long-latency dependence chains and the
 * bulk-incremented stall counters must equal the reference's
 * cycle-by-cycle accounting.
 */
TEST(SimFastSkip, BulkStallAccountingOnLatencyChain)
{
    // A serial chain of divisions: each stalls ~div_latency cycles.
    FunctionBuilder b("divchain");
    Reg x = b.param();
    BlockId bb = b.newBlock("b");
    b.setBlock(bb);
    Reg two = b.constI(2);
    Reg v = b.add(x, two);
    for (int i = 0; i < 32; ++i) {
        v = b.div(v, two);
        v = b.add(v, x);
    }
    b.ret({v});
    Function f = b.finish();

    MachineConfig m = MachineConfig::paperDefault();
    MemoryImage mem1, mem2;
    SimResult fast =
        simulateSingleThreaded(f, {1000000}, mem1, m, SimEngine::Fast);
    SimResult ref = simulateSingleThreaded(f, {1000000}, mem2, m,
                                           SimEngine::Reference);

    EXPECT_TRUE(fast == ref);
    // The whole point: the fast engine swept far fewer cycles.
    EXPECT_GT(fast.engine.skipped, 0u);
    EXPECT_LT(fast.engine.iterations, fast.cycles);
    EXPECT_EQ(fast.engine.iterations + fast.engine.skipped,
              fast.cycles);
    // Stall cycles dominated by the div chain; bulk accounting must
    // reproduce them exactly (already covered by ==, spelled out for
    // the counter the skip engine touches).
    EXPECT_EQ(fast.core[0].stall_operand, ref.core[0].stall_operand);
    EXPECT_EQ(ref.engine.skipped, 0u);
}

/** Build the producer/consumer ping-pong used by the wakeup tests. */
MtProgram
pingPong(int n_values)
{
    MtProgram prog;
    prog.num_queues = 1;
    prog.queue_capacity = 1;
    {
        FunctionBuilder b("consumer");
        Reg n = b.param();
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId done = b.newBlock("done");
        b.setBlock(head);
        Reg i = b.constI(0);
        Reg sum = b.constI(0);
        b.jmp(body);
        b.setBlock(body);
        Reg v = b.func().newReg();
        b.func().append(body,
                        {.op = Opcode::Consume, .dst = v, .queue = 0});
        b.addInto(sum, sum, v);
        Reg one = b.constI(1);
        b.addInto(i, i, one);
        Reg c = b.cmpLt(i, n);
        b.br(c, body, done);
        b.setBlock(done);
        b.ret({sum});
        prog.threads.push_back(b.finish());
    }
    {
        FunctionBuilder b("producer");
        Reg n = b.param();
        BlockId head = b.newBlock("head");
        BlockId body = b.newBlock("body");
        BlockId done = b.newBlock("done");
        b.setBlock(head);
        Reg i = b.constI(0);
        b.jmp(body);
        b.setBlock(body);
        b.func().append(body,
                        {.op = Opcode::Produce, .src1 = i, .queue = 0});
        Reg one = b.constI(1);
        b.addInto(i, i, one);
        Reg c = b.cmpLt(i, n);
        b.br(c, body, done);
        b.setBlock(done);
        b.ret({});
        prog.threads.push_back(b.finish());
    }
    (void)n_values;
    return prog;
}

/**
 * Queue wakeup: with capacity-1 queues the producer repeatedly blocks
 * on a full queue and the consumer on an empty one. The version-stamp
 * memo must re-arm each side exactly when the reference's re-poll
 * would succeed, keeping every stall counter identical.
 */
TEST(SimFastWakeup, CapacityOnePingPongBitIdentical)
{
    MtProgram prog = pingPong(500);
    MachineConfig m = MachineConfig::paperDefault();

    MemoryImage mem1, mem2;
    CmpSimulator fast_sim(m, SimEngine::Fast);
    CmpSimulator ref_sim(m, SimEngine::Reference);
    SimResult fast = fast_sim.run(prog, {500}, mem1);
    SimResult ref = ref_sim.run(prog, {500}, mem2);

    EXPECT_TRUE(fast == ref);
    EXPECT_EQ(fast.live_outs.size(), 1u);
    EXPECT_EQ(fast.live_outs[0], 499 * 500 / 2);
    EXPECT_TRUE(fast.queues_drained);
    // Both kinds of queue stall occurred and match exactly.
    EXPECT_GT(fast.core[0].stall_queue_empty, 0u);
    EXPECT_GT(fast.core[1].stall_queue_full, 0u);
}

/** Pre-decoding preserves the program shape the issue loop walks. */
TEST(DecodedProgram, BranchTargetsAndLatencyClasses)
{
    FunctionBuilder b("shapes");
    Reg x = b.param();
    BlockId head = b.newBlock("head");
    BlockId then_b = b.newBlock("then");
    BlockId done = b.newBlock("done");
    b.setBlock(head);
    Reg two = b.constI(2);
    Reg m = b.mul(x, two);
    Reg d = b.div(m, two);
    Reg c = b.cmpLt(d, two);
    b.br(c, then_b, done);
    b.setBlock(then_b);
    b.jmp(done);
    b.setBlock(done);
    b.ret({d});
    Function f = b.finish();

    DecodedThread t = decodeThread(f);
    ASSERT_EQ(t.code.size(),
              static_cast<size_t>(f.numInstrs()));
    int muls = 0, divs = 0, brs = 0, jmps = 0;
    for (const DecodedInstr &di : t.code) {
        if (di.lat == LatClass::Mul && di.op == Opcode::Mul)
            ++muls;
        if (di.lat == LatClass::Div)
            ++divs;
        if (di.op == Opcode::Br) {
            ++brs;
            // Both targets resolved to valid flat indices.
            EXPECT_GE(di.next, 0);
            EXPECT_GE(di.br_not, 0);
            EXPECT_LT(di.next, static_cast<int32_t>(t.code.size()));
            EXPECT_LT(di.br_not, static_cast<int32_t>(t.code.size()));
        }
        if (di.op == Opcode::Jmp) {
            ++jmps;
            EXPECT_GE(di.next, 0);
        }
    }
    EXPECT_EQ(muls, 1);
    EXPECT_EQ(divs, 1);
    EXPECT_EQ(brs, 1);
    EXPECT_EQ(jmps, 1);
}

/**
 * The wedge detector must fire identically under skipping: a
 * two-thread deadlock (both consume first) dies at the same cycle in
 * both engines rather than being masked by (or tripping early in)
 * the skip engine.
 */
TEST(SimFastWedge, DeadlockDetectedLikeReference)
{
    MtProgram prog;
    prog.num_queues = 2;
    prog.queue_capacity = 1;
    for (int t = 0; t < 2; ++t) {
        FunctionBuilder b(t == 0 ? "a" : "b");
        BlockId bb = b.newBlock("b");
        b.setBlock(bb);
        Reg v = b.func().newReg();
        // Each consumes the queue only the *other* would fill last —
        // classic circular wait; nothing is ever produced.
        b.func().append(bb, {.op = Opcode::Consume, .dst = v,
                             .queue = static_cast<QueueId>(t)});
        b.func().append(bb, {.op = Opcode::Produce, .src1 = v,
                             .queue = static_cast<QueueId>(1 - t)});
        b.ret({});
        prog.threads.push_back(b.finish());
    }
    MachineConfig m = MachineConfig::paperDefault();
    MemoryImage mem1, mem2;
    CmpSimulator fast_sim(m, SimEngine::Fast);
    CmpSimulator ref_sim(m, SimEngine::Reference);
    EXPECT_THROW(fast_sim.run(prog, {}, mem1), FatalError);
    EXPECT_THROW(ref_sim.run(prog, {}, mem2), FatalError);
}

} // namespace
} // namespace gmt
