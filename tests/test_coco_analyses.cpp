#include <gtest/gtest.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "coco/relevant.hpp"
#include "coco/safety.hpp"
#include "coco/thread_liveness.hpp"
#include "ir/builder.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "testgen.hpp"

namespace gmt
{
namespace
{

/**
 * Two-thread straight-line program:
 *   t0: r0=param; a = r0+1;        (defines a)
 *   t1: b = a*2;                   (defines b, uses a)
 *   t0: ret b
 */
struct TinyProg
{
    Function f{"tiny"};
    Reg a = kNoReg, b = kNoReg;
    ThreadPartition p;
};

TinyProg
buildTiny()
{
    TinyProg tp;
    FunctionBuilder bb("tiny");
    Reg x = bb.param();
    BlockId blk = bb.newBlock("b");
    bb.setBlock(blk);
    Reg a = bb.addImm(x, 1);  // const, add
    Reg two = bb.constI(2);
    Reg b = bb.mul(a, two);
    bb.ret({b});
    tp.f = bb.finish();
    tp.a = a;
    tp.b = b;
    tp.p.num_threads = 2;
    tp.p.assign.assign(tp.f.numInstrs(), 0);
    // mul (position 3) belongs to thread 1.
    tp.p.assign[tp.f.block(0).instrs()[3]] = 1;
    return tp;
}

TEST(Safety, OwnDefMakesSafe)
{
    TinyProg tp = buildTiny();
    SafetyAnalysis safety(tp.f, tp.p, 0);
    // After the add (position 1), a is safe for thread 0.
    EXPECT_TRUE(safety.isSafeAt(tp.a, {0, 2}));
    // b is defined by thread 1's mul: unsafe for thread 0 after it.
    EXPECT_FALSE(safety.isSafeAt(tp.b, {0, 4}));
}

TEST(Safety, ForeignDefMakesUnsafe)
{
    TinyProg tp = buildTiny();
    SafetyAnalysis safety(tp.f, tp.p, 1);
    // Before the mul, a was defined by thread 0: unsafe for thread 1
    // to send (it does not hold the latest value)...
    EXPECT_FALSE(safety.isSafeAt(tp.a, {0, 2}));
    // ...but after thread 1 *uses* a in the mul, it must hold the
    // latest value (it consumed it): safe (the USE term of eq. 1).
    EXPECT_TRUE(safety.isSafeAt(tp.a, {0, 4}));
    // And b, thread 1's own def, is safe afterwards.
    EXPECT_TRUE(safety.isSafeAt(tp.b, {0, 4}));
}

TEST(Safety, EverythingSafeAtEntry)
{
    TinyProg tp = buildTiny();
    for (int t = 0; t < 2; ++t) {
        SafetyAnalysis safety(tp.f, tp.p, t);
        auto safe = safety.safeAt({0, 0});
        EXPECT_EQ(safe.count(), static_cast<size_t>(tp.f.numRegs()));
    }
}

TEST(Safety, MergeIsIntersection)
{
    // r defined by t0 in one arm only; at the join r is safe for t0
    // only if safe on both paths.
    FunctionBuilder b("merge");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId left = b.newBlock("left");
    BlockId right = b.newBlock("right");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg r = b.constI(0); // t0 def
    b.br(c, left, right);
    b.setBlock(left);
    b.constInto(r, 5); // t1 def (foreign for t0)
    b.jmp(join);
    b.setBlock(right);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.mov(r);
    b.ret({s});
    Function f = b.finish();
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    p.assign[f.block(left).instrs()[0]] = 1; // the redefinition

    SafetyAnalysis s0(f, p, 0);
    // Safe on the right path, unsafe on the left -> unsafe at join.
    EXPECT_FALSE(s0.isSafeAt(r, {join, 0}));
    EXPECT_TRUE(s0.isSafeAt(r, {right, 0}));
    EXPECT_FALSE(s0.isSafeAt(r, {left, 1}));
}

TEST(ThreadLiveness, OnlyTargetUsesCount)
{
    TinyProg tp = buildTiny();
    BitVector no_branches(tp.f.numBlocks());
    ThreadLiveness live1(tp.f, tp.p, 1, no_branches);
    // a is live for thread 1 until the mul consumes it.
    EXPECT_TRUE(live1.isLiveAt(tp.a, {0, 2}));
    EXPECT_FALSE(live1.isLiveAt(tp.a, {0, 4}));
    // b is used only by thread 0's ret: dead w.r.t. thread 1.
    EXPECT_FALSE(live1.isLiveAt(tp.b, {0, 4}));

    ThreadLiveness live0(tp.f, tp.p, 0, no_branches);
    EXPECT_TRUE(live0.isLiveAt(tp.b, {0, 4}));
    // a is not used by any thread-0 instruction after its def.
    EXPECT_FALSE(live0.isLiveAt(tp.a, {0, 2}));
}

TEST(ThreadLiveness, RelevantBranchUsesCount)
{
    // branch operand should be live w.r.t. a thread the branch is
    // relevant to, even though the branch is not assigned to it.
    FunctionBuilder b("rb");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId arm = b.newBlock("arm");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    Reg cond = b.mov(c);
    b.br(cond, arm, join);
    b.setBlock(arm);
    Reg v = b.constI(3);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.mov(v);
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);

    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);

    BitVector without(f.numBlocks());
    ThreadLiveness live_no(f, p, 1, without);
    EXPECT_FALSE(live_no.isLiveAt(cond, {top, 1}));

    BitVector with(f.numBlocks());
    with.set(top); // branch in `top` is relevant to thread 1
    ThreadLiveness live_yes(f, p, 1, with);
    EXPECT_TRUE(live_yes.isLiveAt(cond, {top, 1}));
}

TEST(Relevant, OwnedBranchesAndControlInputs)
{
    FunctionBuilder b("rel");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId arm = b.newBlock("arm");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    b.br(c, arm, join);
    b.setBlock(arm);
    Reg v = b.constI(3);
    b.jmp(join);
    b.setBlock(join);
    Reg s = b.mov(v);
    b.ret({s});
    Function f = b.finish();
    splitCriticalEdges(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);

    // Thread 1 owns the const in `arm`; the branch (thread 0) then
    // controls one of thread 1's instructions -> relevant to both.
    ThreadPartition p;
    p.num_threads = 2;
    p.assign.assign(f.numInstrs(), 0);
    p.assign[f.block(arm).instrs()[0]] = 1;

    auto sets = initRelevantBranches(f, cd, p);
    EXPECT_TRUE(sets[0].test(top)); // rule 1 (owns the branch)
    EXPECT_TRUE(sets[1].test(top)); // control input of its const
}

TEST(Relevant, GrowForPointAddsControllers)
{
    FunctionBuilder b("grow");
    Reg c = b.param();
    BlockId top = b.newBlock("top");
    BlockId arm = b.newBlock("arm");
    BlockId join = b.newBlock("join");
    b.setBlock(top);
    b.br(c, arm, join);
    b.setBlock(arm);
    Reg v = b.constI(3);
    (void)v;
    b.jmp(join);
    b.setBlock(join);
    b.ret({});
    Function f = b.finish();
    splitCriticalEdges(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);

    BitVector set(f.numBlocks());
    EXPECT_TRUE(isRelevantPoint(cd, set, join));
    EXPECT_FALSE(isRelevantPoint(cd, set, arm));
    EXPECT_TRUE(growRelevantForPoint(f, cd, set, {arm, 0}));
    EXPECT_TRUE(set.test(top));
    EXPECT_TRUE(isRelevantPoint(cd, set, arm));
    EXPECT_FALSE(growRelevantForPoint(f, cd, set, {arm, 0}));
}

// Safety is a must-analysis: on random programs, a register reported
// safe at a point must be safe along every incoming path (checked
// against predecessors' transfer results).
TEST(SafetyProperty, ConsistentWithPredecessors)
{
    Rng rng(31313);
    for (int trial = 0; trial < 15; ++trial) {
        auto gen = generateProgram(rng);
        Function &f = gen.func;
        ThreadPartition p;
        p.num_threads = 2;
        p.assign.resize(f.numInstrs());
        for (auto &x : p.assign)
            x = static_cast<int>(rng.nextBelow(2));
        SafetyAnalysis safety(f, p, 0);
        for (BlockId b = 0; b < f.numBlocks(); ++b) {
            if (b == f.entry())
                continue;
            BitVector expect(f.numRegs());
            bool first = true;
            for (BlockId pred : f.block(b).preds()) {
                BitVector out = safety.safeAt(
                    {pred, static_cast<int>(f.block(pred).size())});
                if (first) {
                    expect = std::move(out);
                    first = false;
                } else {
                    expect.intersectWith(out);
                }
            }
            ASSERT_EQ(expect, safety.safeIn(b))
                << "trial " << trial << " block " << b;
        }
    }
}

} // namespace
} // namespace gmt
