#ifndef GMT_TESTS_TESTGEN_HPP
#define GMT_TESTS_TESTGEN_HPP

/**
 * @file
 * Random structured-program generator for property tests.
 *
 * Programs are generated from a structured grammar (sequence / if-else
 * / bounded while), which guarantees termination and verifier-valid
 * CFGs while still producing rich control flow, loop-carried register
 * dependences, and aliased memory traffic. Used to cross-check MTCG
 * and COCO against the single-threaded interpreter on thousands of
 * program x partition x schedule combinations.
 */

#include <cstdint>

#include "ir/function.hpp"
#include "support/rng.hpp"

namespace gmt
{

/** Knobs for the random generator. */
struct TestGenOptions
{
    int max_depth = 3;        ///< nesting depth of if/while
    int max_stmts = 5;        ///< statements per sequence
    int pool_regs = 6;        ///< registers programs compute on
    int array_cells = 16;     ///< size of the memory array used
    int max_loop_trips = 6;   ///< bound for generated while loops
    double mem_prob = 0.25;   ///< probability a statement is load/store
    int num_alias_classes = 3; ///< distinct alias classes (plus Any)
};

/** A generated function plus the memory it expects. */
struct GeneratedProgram
{
    Function func;
    int64_t array_base = 0; ///< base address of the data array
    int64_t array_cells = 0;
};

/**
 * Generate a random terminating function with @p opts. The function
 * takes 2 params and returns all pool registers as live-outs. Memory
 * accesses hit [array_base, array_base + array_cells).
 */
GeneratedProgram generateProgram(Rng &rng, const TestGenOptions &opts = {});

} // namespace gmt

#endif // GMT_TESTS_TESTGEN_HPP
